(* Tests for the QWM core: accuracy against the SPICE reference on the
   paper's workloads, critical-point structure, the three linear-solver
   paths, pi-model wire collapsing, ramp inputs and failure handling. *)

open Tqwm_device
open Tqwm_circuit
module Qwm = Tqwm_core.Qwm
module Qwm_solver = Tqwm_core.Qwm_solver
module Config = Tqwm_core.Config
module Engine = Tqwm_spice.Engine
module Waveform = Tqwm_wave.Waveform

let tech = Tech.cmosp35

let golden = Models.golden tech

let table = lazy (Models.table tech)

let spice_delay scenario =
  match (Engine.run ~model:golden scenario).Engine.delay with
  | Some d -> d
  | None -> Alcotest.fail "spice delay missing"

let qwm_report ?config scenario = Qwm.run ~model:(Lazy.force table) ?config scenario

let qwm_delay ?config scenario =
  match (qwm_report ?config scenario).Qwm.delay with
  | Some d -> d
  | None -> Alcotest.fail "qwm delay missing"

let check_error_below msg limit scenario =
  let reference = spice_delay scenario in
  let d = qwm_delay scenario in
  let err = 100.0 *. Float.abs (d -. reference) /. reference in
  if err > limit then
    Alcotest.failf "%s: delay error %.2f%% exceeds %.1f%% (spice %.2fps, qwm %.2fps)" msg
      err limit (reference *. 1e12) (d *. 1e12)

(* ---------- accuracy on the paper's workloads ---------- *)

let test_gate_accuracy () =
  check_error_below "inv" 3.0 (Scenario.inverter_falling tech);
  check_error_below "nand2" 4.0 (Scenario.nand_falling ~n:2 tech);
  check_error_below "nand3" 4.0 (Scenario.nand_falling ~n:3 tech);
  check_error_below "nand4" 4.0 (Scenario.nand_falling ~n:4 tech)

let test_nor_pull_up_accuracy () =
  check_error_below "nor2" 4.0 (Scenario.nor_rising ~n:2 tech);
  check_error_below "nor3" 4.0 (Scenario.nor_rising ~n:3 tech)

let test_stack_accuracy () =
  check_error_below "stack6" 3.0
    (Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech);
  check_error_below "manchester5" 3.0 (Scenario.manchester ~bits:5 tech)

let test_random_stack_accuracy () =
  List.iter
    (fun (len, seed) ->
      check_error_below
        (Printf.sprintf "ckt%d_%d" len seed)
        4.0
        (Random_circuits.stack_scenario tech ~len ~seed))
    [ (5, 1); (7, 2); (10, 3) ]

let test_decoder_accuracy () =
  check_error_below "decoder2" 5.0 (Scenario.decoder ~levels:2 tech)

let test_complex_gate_accuracy () =
  (* OAI21's conducting side branch is tiny: tight bound. AOI21 slaves a
     larger branch through an on PMOS; full-slaving is documented as
     conservative, so allow more error but require the pessimistic sign. *)
  check_error_below "oai21" 5.0 (Scenario.oai21_rising tech);
  let scenario = Scenario.aoi21_falling tech in
  let reference = spice_delay scenario in
  let d = qwm_delay scenario in
  let err = 100.0 *. Float.abs (d -. reference) /. reference in
  if err > 15.0 then Alcotest.failf "aoi21 error %.2f%% exceeds 15%%" err;
  if d < reference then
    Alcotest.failf "aoi21 expected pessimistic (qwm %.2fps < spice %.2fps)" (d *. 1e12)
      (reference *. 1e12)

let test_fig1_nand_pass_accuracy () =
  (* the paper's Example 1 stage: NAND + pass transistor + wire *)
  let scenario = Scenario.nand_pass_falling ~n:3 tech in
  check_error_below "nandpass3" 5.0 scenario;
  (* the pass transistor must contribute a genuine mid-transient critical
     point: not all turn-ons can fire at t = 0 *)
  let qw = qwm_report scenario in
  Alcotest.(check bool) "pass-gate turn-on is mid-transient" true
    (List.exists (fun t -> t > 1e-12) qw.Qwm.critical_times)

let test_node_delays_monotone_along_chain () =
  (* Manchester carry arrivals must increase with bit position — all read
     from a single QWM solve *)
  let qw = qwm_report (Scenario.manchester ~bits:5 tech) in
  let delays =
    List.filter_map
      (fun i -> Qwm.node_delay qw (Printf.sprintf "c%d" i))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "all carries cross" 5 (List.length delays);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "carry arrivals ascend" true (ascending delays);
  (match Qwm.node_delay qw "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

let test_node_current_matches_spice_peak () =
  (* QWM's piecewise-linear node current (paper Eq. (2)) should show the
     same initial peak as the reference engine's bottom-edge current *)
  let scenario = Scenario.stack_falling ~widths:(Array.make 4 1.6e-6) tech in
  let qw = qwm_report scenario in
  let i_qwm = Qwm.node_current qw "x1" ~dt:1e-12 in
  let lo_q, _ = Tqwm_wave.Measure.swing i_qwm in
  let config =
    { Tqwm_spice.Transient.default_config with Tqwm_spice.Transient.record_currents = true }
  in
  let sp = Tqwm_spice.Transient.simulate ~model:golden ~config scenario in
  (* node x1's discharge current = J2 - J1 *)
  let j k t =
    Waveform.value_at (Tqwm_spice.Transient.edge_current_waveform sp k) t
  in
  let spice_peak = ref 0.0 in
  for i = 0 to 200 do
    let t = float_of_int i *. 1e-12 in
    spice_peak := Float.min !spice_peak (j 1 t -. j 0 t)
  done;
  (* both are large negative discharge currents of the same magnitude *)
  if Float.abs (lo_q -. !spice_peak) > 0.35 *. Float.abs !spice_peak then
    Alcotest.failf "peak current mismatch: qwm %.3g vs spice %.3g" lo_q !spice_peak

let test_waveform_rms () =
  let scenario = Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech in
  let sp = Engine.run ~model:golden scenario in
  let qw = qwm_report scenario in
  let report =
    Tqwm_wave.Compare.waveforms ~reference:sp.Engine.output
      (Qwm.output_waveform qw ~dt:1e-12)
  in
  if report.Tqwm_wave.Compare.rms_percent_of_swing > 4.0 then
    Alcotest.failf "waveform RMS %.2f%% of swing exceeds 4%%"
      report.Tqwm_wave.Compare.rms_percent_of_swing

(* ---------- critical-point structure ---------- *)

let test_critical_points_count_and_order () =
  let k = 6 in
  let qw = qwm_report (Scenario.stack_falling ~widths:(Array.make k 1.6e-6) tech) in
  let crits = qw.Qwm.critical_times in
  Alcotest.(check int) "one turn-on per transistor" k (List.length crits);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending" true (ascending crits);
  Alcotest.(check int) "stats agree" k qw.Qwm.stats.Qwm_solver.turn_ons

let test_critical_points_spread_for_precharged_stack () =
  (* the Fig. 7 cascade: consecutive turn-ons are separated in time *)
  let qw = qwm_report (Scenario.manchester ~bits:5 tech) in
  match qw.Qwm.critical_times with
  | first :: rest ->
    Alcotest.(check (float 1e-15)) "first fires at t=0" 0.0 first;
    Alcotest.(check bool) "later turn-ons are strictly positive" true
      (List.for_all (fun t -> t > 0.0) rest)
  | [] -> Alcotest.fail "critical points expected"

let test_turn_on_matches_spice_cascade () =
  (* QWM's predicted turn-on of M2 = instant node x1 crosses VDD - Vth;
     compare against the SPICE trace of x1 *)
  let scenario = Scenario.stack_falling ~widths:(Array.make 4 1.6e-6) tech in
  let qw = qwm_report scenario in
  let t_qwm = List.nth qw.Qwm.critical_times 1 in
  let sp = Engine.run ~model:golden scenario in
  let x1 = Builders.find_node scenario.Scenario.stage "x1" in
  let w = Tqwm_spice.Transient.node_waveform sp.Engine.result x1 in
  let vp = Scenario.precharge_voltage tech in
  match Waveform.first_crossing w ~level:vp ~direction:`Falling with
  | Some t_sp ->
    if Float.abs (t_qwm -. t_sp) > 0.3 *. t_sp +. 1e-12 then
      Alcotest.failf "turn-on mismatch: qwm %.2fps vs spice %.2fps" (t_qwm *. 1e12)
        (t_sp *. 1e12)
  | None -> Alcotest.fail "spice crossing missing"

(* ---------- linear-solver paths ---------- *)

let test_linear_solvers_identical () =
  let scenario = Random_circuits.stack_scenario tech ~len:8 ~seed:2 in
  let delay solver =
    qwm_delay ~config:{ Config.default with Config.linear_solver = solver } scenario
  in
  let d_b = delay Config.Bordered in
  let d_s = delay Config.Sherman_morrison in
  let d_l = delay Config.Dense_lu in
  Alcotest.(check (float 1e-15)) "bordered = sherman" d_b d_s;
  Alcotest.(check (float 1e-15)) "bordered = dense" d_b d_l

(* Within each linear-solver mode, results must be bit-identical whatever
   scratch workspace the solve uses: the domain default, a freshly created
   one, or one reused after being dirtied by a longer chain (stale slots
   and over-capacity buffers must never leak into results). Across modes
   only tolerance equality holds — the three solvers order floating-point
   operations differently — hence the [float 1e-15] checks above rather
   than bit comparison. *)
let test_workspace_reuse_bit_identical () =
  let model = Lazy.force table in
  let piece_bits (p : Waveform.piece) =
    List.map Int64.bits_of_float
      [ p.Waveform.t0; p.Waveform.dt; p.Waveform.v0; p.Waveform.dv; p.Waveform.ddv ]
  in
  let fingerprint (r : Qwm.report) =
    ( List.map
        (fun (name, q) ->
          (name, List.concat_map piece_bits (Waveform.quadratic_pieces q)))
        r.Qwm.node_quadratics,
      List.map Int64.bits_of_float r.Qwm.critical_times,
      Option.map Int64.bits_of_float r.Qwm.delay )
  in
  let scenario = Random_circuits.stack_scenario tech ~len:8 ~seed:5 in
  let dirty = Random_circuits.stack_scenario tech ~len:10 ~seed:9 in
  List.iter
    (fun solver ->
      let config = { Config.default with Config.linear_solver = solver } in
      let run ?workspace () = fingerprint (Qwm.run ~model ~config ?workspace scenario) in
      let reference = run () in
      (* capacity 2 forces the grow-on-demand path on an 8-node chain *)
      let ws = Qwm_solver.Workspace.create ~capacity:2 () in
      Alcotest.(check bool) "fresh workspace bit-identical" true (run ~workspace:ws () = reference);
      ignore (Qwm.run ~model ~config ~workspace:ws dirty);
      Alcotest.(check bool) "dirtied workspace bit-identical" true
        (run ~workspace:ws () = reference))
    [ Config.Bordered; Config.Sherman_morrison; Config.Dense_lu ]

(* ---------- waveform models ---------- *)

let test_linear_waveform_model_converges () =
  let config = { Config.default with Config.waveform_model = Config.Linear } in
  List.iter
    (fun scenario ->
      let reference = spice_delay scenario in
      let d = qwm_delay ~config scenario in
      let err = 100.0 *. Float.abs (d -. reference) /. reference in
      if err > 6.0 then
        Alcotest.failf "%s: linear-model error %.2f%% exceeds 6%%" scenario.Scenario.name
          err)
    [
      Scenario.inverter_falling tech;
      Scenario.nand_falling ~n:3 tech;
      Scenario.stack_falling ~widths:(Array.make 5 1.6e-6) tech;
    ]

let test_quadratic_beats_linear_on_sparse_ladder () =
  (* with few matching points the quadratic pieces must carry the shape *)
  let sparse = [ 0.5; 0.15 ] in
  let scenario = Scenario.nand_falling ~n:3 tech in
  let reference = spice_delay scenario in
  let err waveform_model =
    let config = { Config.default with Config.waveform_model; levels = sparse } in
    100.0 *. Float.abs (qwm_delay ~config scenario -. reference) /. reference
  in
  let e_quad = err Config.Quadratic and e_lin = err Config.Linear in
  if e_quad >= e_lin then
    Alcotest.failf "expected quadratic (%.2f%%) to beat linear (%.2f%%)" e_quad e_lin

let test_linear_pieces_are_linear () =
  let config = { Config.default with Config.waveform_model = Config.Linear } in
  let qw = qwm_report ~config (Scenario.nand_falling ~n:2 tech) in
  List.iter
    (fun (_, q) ->
      List.iter
        (fun (piece : Waveform.piece) ->
          Alcotest.(check (float 0.0)) "no curvature" 0.0 piece.Waveform.ddv)
        (Waveform.quadratic_pieces q))
    qw.Qwm.node_quadratics

(* ---------- pi-model collapsing ---------- *)

let test_collapse_reduces_chain () =
  let scenario = Scenario.decoder ~levels:3 tech in
  let model = Lazy.force table in
  let full =
    Qwm.lower_scenario ~model
      ~config:{ Config.default with Config.reduce_wires = false }
      scenario
  in
  let reduced = Qwm.lower_scenario ~model ~config:Config.default scenario in
  Alcotest.(check bool) "fewer chain edges" true
    (Chain.length reduced.Path.chain < Chain.length full.Path.chain);
  (* every wire run becomes exactly one resistor edge: 3 levels -> 4+3 edges *)
  Alcotest.(check int) "pi per level" 7 (Chain.length reduced.Path.chain)

let test_collapse_conserves_capacitance () =
  let scenario = Scenario.decoder ~levels:2 tech in
  let model = Lazy.force table in
  let full =
    Qwm.lower_scenario ~model
      ~config:{ Config.default with Config.reduce_wires = false }
      scenario
  in
  let reduced = Qwm.lower_scenario ~model ~config:Config.default scenario in
  let total chain = Array.fold_left ( +. ) 0.0 chain.Chain.caps in
  let before = total full.Path.chain and after = total reduced.Path.chain in
  if Float.abs (before -. after) > 1e-6 *. before then
    Alcotest.failf "capacitance not conserved: %.4g fF vs %.4g fF" (before *. 1e15)
      (after *. 1e15)

let test_reduced_vs_unreduced_delay () =
  let scenario = Scenario.decoder ~levels:2 tech in
  let d_red = qwm_delay scenario in
  let d_full =
    qwm_delay ~config:{ Config.default with Config.reduce_wires = false } scenario
  in
  Alcotest.(check bool) "pi model preserves delay within 5%" true
    (Float.abs (d_red -. d_full) /. d_full < 0.05)

(* ---------- ramp inputs ---------- *)

let test_ramp_input_accuracy () =
  let scenario =
    Scenario.with_ramp_input ~rise_time:60e-12 (Scenario.nand_falling ~n:3 tech)
  in
  check_error_below "nand3 ramp" 5.0 scenario

let test_slow_ramp_delays_first_turn_on () =
  (* with a slow ramp the bottom transistor cannot turn on before its gate
     passes Vth: the first critical time must be near rise_time*vth/vdd *)
  let rise_time = 200e-12 in
  let scenario =
    Scenario.with_ramp_input ~rise_time
      (Scenario.stack_falling ~widths:(Array.make 3 1.6e-6) tech)
  in
  let qw = qwm_report scenario in
  match qw.Qwm.critical_times with
  | first :: _ ->
    let expected = rise_time *. tech.Tech.vt0_n /. tech.Tech.vdd in
    if Float.abs (first -. expected) > 0.25 *. expected then
      Alcotest.failf "first turn-on %.2fps, expected about %.2fps" (first *. 1e12)
        (expected *. 1e12)
  | [] -> Alcotest.fail "critical times expected"

(* ---------- randomized integration property ---------- *)

(* random mixed chains: stacks with wire segments spliced between
   transistors and random loads, checked end-to-end against the
   reference engine *)
let random_mixed_scenario seed =
  let state = Random.State.make [| seed; 9001 |] in
  let uniform lo hi = lo +. ((hi -. lo) *. Random.State.float state 1.0) in
  let transistors = 2 + Random.State.int state 4 in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let rec build below k =
    if k > transistors then below
    else begin
      let above = if k = transistors then out else Stage.add_node b (Printf.sprintf "n%d" k) in
      let w = uniform tech.Tech.w_min (5.0 *. tech.Tech.w_min) in
      Stage.add_edge b ~gate:(Printf.sprintf "g%d" k) (Device.nmos ~w tech) ~src:above
        ~snk:below;
      (* occasionally splice a wire above the transistor *)
      let above =
        if k < transistors && Random.State.bool state then begin
          let far = Stage.add_node b (Printf.sprintf "w%d" k) in
          Stage.add_edge b
            (Device.wire ~w:0.6e-6 ~l:(uniform 20e-6 120e-6))
            ~src:far ~snk:above;
          far
        end
        else above
      in
      build above (k + 1)
    end
  in
  let top = build (Stage.ground b) 1 in
  assert (top = out);
  Stage.add_load b out (uniform 5e-15 30e-15);
  Stage.mark_output b out;
  let stage = Stage.finish b in
  let sources =
    List.init transistors (fun i ->
        let name = Printf.sprintf "g%d" (i + 1) in
        ( name,
          if i = 0 then Tqwm_wave.Source.step ~low:0.0 ~high:tech.Tech.vdd ()
          else Tqwm_wave.Source.constant tech.Tech.vdd ))
  in
  {
    Scenario.name = Printf.sprintf "mixed%d" seed;
    tech;
    stage;
    sources;
    output = Builders.output_exn stage;
    output_edge = Tqwm_wave.Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 1.2e-9;
    initial =
      Array.init stage.Stage.num_nodes (fun n ->
          if n = stage.Stage.ground then 0.0 else tech.Tech.vdd);
  }

let test_random_mixed_chains () =
  List.iter
    (fun seed ->
      let scenario = random_mixed_scenario seed in
      let reference = spice_delay scenario in
      let d = qwm_delay scenario in
      let err = 100.0 *. Float.abs (d -. reference) /. reference in
      if err > 8.0 then
        Alcotest.failf "mixed chain seed %d: error %.2f%% exceeds 8%%" seed err)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---------- robustness and configuration ---------- *)

let test_no_failures_on_suite () =
  List.iter
    (fun scenario ->
      let qw = qwm_report scenario in
      Alcotest.(check int)
        (scenario.Scenario.name ^ " fallback-free")
        0 qw.Qwm.stats.Qwm_solver.failures)
    [
      Scenario.inverter_falling tech;
      Scenario.nand_falling ~n:4 tech;
      Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech;
    ]

let test_fewer_levels_fewer_regions () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let regions levels =
    (qwm_report ~config:{ Config.default with Config.levels } scenario).Qwm.stats
      .Qwm_solver.regions
  in
  Alcotest.(check bool) "coarser ladder, fewer regions" true
    (regions [ 0.5; 0.2 ] < regions Config.default.Config.levels)

let test_short_window_truncates () =
  let scenario = { (Scenario.nand_falling ~n:2 tech) with Scenario.t_end = 5e-12 } in
  let qw = qwm_report scenario in
  Alcotest.(check bool) "solved time bounded" true
    (qw.Qwm.stats.Qwm_solver.regions < 50);
  (* output barely moves in 5 ps: no 50% crossing *)
  Alcotest.(check bool) "no delay in tiny window" true (qw.Qwm.delay = None)

let test_node_waveforms_cover_nodes () =
  let scenario = Scenario.stack_falling ~widths:(Array.make 5 1.6e-6) tech in
  let qw = qwm_report scenario in
  Alcotest.(check int) "one quadratic per chain node" 5
    (List.length qw.Qwm.node_quadratics);
  List.iter
    (fun (name, q) ->
      let v0 = Waveform.quadratic_value_at q 0.0 in
      if Float.abs (v0 -. tech.Tech.vdd) > 1e-6 then
        Alcotest.failf "%s starts at %.3f, expected vdd" name v0)
    qw.Qwm.node_quadratics

let test_monotone_output () =
  (* the falling output never rises above its starting point *)
  let scenario = Scenario.nand_falling ~n:3 tech in
  let qw = qwm_report scenario in
  let w = Qwm.output_waveform qw ~dt:1e-12 in
  let _, hi = Tqwm_wave.Measure.swing w in
  Alcotest.(check bool) "bounded above by vdd + 0.05" true (hi <= tech.Tech.vdd +. 0.05)

let test_switching_energy () =
  (* a falling inverter dissipates (almost) the full 1/2 C VDD^2 stored on
     its output node *)
  let scenario = Scenario.inverter_falling tech in
  let qw = qwm_report scenario in
  let c_out = qw.Qwm.lowering.Path.chain.Chain.caps.(0) in
  let expected = 0.5 *. c_out *. tech.Tech.vdd *. tech.Tech.vdd in
  let e = Qwm.switching_energy qw in
  if Float.abs (e -. expected) > 0.05 *. expected then
    Alcotest.failf "energy %.3g J, expected about %.3g J" e expected;
  (* a deeper stack stores strictly more switchable energy *)
  let stack = qwm_report (Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech) in
  Alcotest.(check bool) "stack dissipates more" true
    (Qwm.switching_energy stack > e)

let test_initial_mismatch_rejected () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let model = Lazy.force table in
  let lowering = Qwm.lower_scenario ~model ~config:Config.default scenario in
  Alcotest.check_raises "bad initial length"
    (Invalid_argument "Qwm_solver.solve: initial voltage count mismatch") (fun () ->
      ignore
        (Qwm_solver.solve ?workspace:None ~model ~config:Config.default ~scenario
           ~chain:lowering.Path.chain ~initial:[| 1.0 |]))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "tqwm_core"
    [
      ( "accuracy",
        [
          slow "gates" test_gate_accuracy;
          slow "nor pull-up" test_nor_pull_up_accuracy;
          slow "stacks" test_stack_accuracy;
          slow "random stacks" test_random_stack_accuracy;
          slow "decoder" test_decoder_accuracy;
          slow "complex gates" test_complex_gate_accuracy;
          slow "fig1 nand+pass" test_fig1_nand_pass_accuracy;
          quick "node delays along chain" test_node_delays_monotone_along_chain;
          slow "node current vs spice" test_node_current_matches_spice_peak;
          slow "waveform rms" test_waveform_rms;
        ] );
      ( "critical points",
        [
          quick "count and order" test_critical_points_count_and_order;
          quick "cascade spread" test_critical_points_spread_for_precharged_stack;
          slow "matches spice cascade" test_turn_on_matches_spice_cascade;
        ] );
      ( "linear solvers",
        [
          quick "all paths identical" test_linear_solvers_identical;
          quick "workspace reuse bit-identical" test_workspace_reuse_bit_identical;
        ] );
      ( "waveform models",
        [
          slow "linear model converges" test_linear_waveform_model_converges;
          slow "quadratic beats linear when sparse" test_quadratic_beats_linear_on_sparse_ladder;
          quick "linear pieces have no curvature" test_linear_pieces_are_linear;
        ] );
      ( "pi reduction",
        [
          quick "reduces chain" test_collapse_reduces_chain;
          quick "conserves capacitance" test_collapse_conserves_capacitance;
          quick "delay preserved" test_reduced_vs_unreduced_delay;
        ] );
      ( "ramp inputs",
        [
          slow "accuracy" test_ramp_input_accuracy;
          quick "slow ramp delays turn-on" test_slow_ramp_delays_first_turn_on;
        ] );
      ( "robustness",
        [
          slow "random mixed chains" test_random_mixed_chains;
          quick "no fallbacks on suite" test_no_failures_on_suite;
          quick "level ladder config" test_fewer_levels_fewer_regions;
          quick "short window" test_short_window_truncates;
          quick "node waveforms" test_node_waveforms_cover_nodes;
          quick "output bounded" test_monotone_output;
          quick "switching energy" test_switching_energy;
          quick "initial mismatch" test_initial_mismatch_rejected;
        ] );
    ]
