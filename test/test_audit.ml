(* Tests for the accuracy observatory (Tqwm_audit): workload catalog
   shape, decoder-tree accuracy against the golden engine, sequential ==
   parallel audit measurements, JSON/ledger round-trips, and the drift
   checker — self-comparison is all-unchanged, a deliberately loosened
   solver config is classified as regressed, and classifications feed
   the audit.* counters. *)

open Tqwm_device
module Audit = Tqwm_audit.Audit
module Baseline = Tqwm_audit.Baseline
module Drift = Tqwm_audit.Drift
module Json = Tqwm_obs.Json
module Ledger = Tqwm_obs.Ledger
module Metrics = Tqwm_obs.Metrics

let tech = Tech.cmosp35

(* the bounded catalog at a coarse golden step: cheap enough to audit
   several times per test run, still exercising all four families *)
let smoke_workloads = lazy (Audit.catalog ~smoke:true tech)

let smoke_audit = lazy (Audit.run ~dt:10e-12 ~workloads:(Lazy.force smoke_workloads) tech)

(* a deliberately damaged solver: Newton current tolerance loosened by
   several orders of magnitude, few iterations, a coarse matching ladder
   and the linear waveform model — still converges, but accuracy must
   visibly degrade against the default-config baseline *)
let perturbed_config =
  {
    Tqwm_core.Config.default with
    Tqwm_core.Config.current_tolerance = 1e-5;
    max_iterations = 6;
    levels = [ 0.85; 0.5; 0.12 ];
    waveform_model = Tqwm_core.Config.Linear;
  }

let perturbed_audit =
  lazy
    (Audit.run ~config:perturbed_config ~dt:10e-12
       ~workloads:(Lazy.force smoke_workloads) tech)

(* ---------- catalog ---------- *)

let test_catalog () =
  let families = List.map fst (Audit.catalog tech) in
  Alcotest.(check (list string))
    "the paper's workload families"
    [ "chain"; "random-stacks"; "decoder-tree"; "awe-wires" ]
    families;
  Alcotest.(check (list string))
    "smoke subset keeps every family" families
    (List.map fst (Audit.catalog ~smoke:true tech));
  (* stage names key baseline comparisons: unique within each workload *)
  List.iter
    (fun (w, scenarios) ->
      Alcotest.(check bool)
        (w ^ " non-empty") true (scenarios <> []);
      let names =
        List.map (fun s -> s.Tqwm_circuit.Scenario.name) scenarios
      in
      Alcotest.(check bool)
        (w ^ " stage names unique") true
        (List.sort_uniq compare names = List.sort compare names))
    (Audit.catalog tech)

(* ---------- accuracy ---------- *)

let test_decoder_accuracy () =
  let workloads =
    List.filter (fun (w, _) -> String.equal w "decoder-tree") (Audit.catalog tech)
  in
  let audit = Audit.run ~workloads tech in
  let summary, records =
    match audit.Audit.workloads with
    | [ (s, rs) ] -> (s, rs)
    | _ -> Alcotest.fail "expected exactly one workload"
  in
  if summary.Audit.avg_accuracy_pct < 98.0 then
    Alcotest.failf "decoder-tree average accuracy %.2f%% < 98%%"
      summary.Audit.avg_accuracy_pct;
  List.iter
    (fun r ->
      if r.Audit.accuracy_pct < 96.0 then
        Alcotest.failf "%s accuracy %.2f%% < 96%%" r.Audit.stage
          r.Audit.accuracy_pct;
      Alcotest.(check bool)
        (r.Audit.stage ^ " solver stats recorded") true
        (r.Audit.regions > 0 && r.Audit.newton_iterations > 0))
    records;
  Alcotest.(check bool)
    "overall mirrors the single workload" true
    (Float.abs
       (audit.Audit.overall.Audit.avg_accuracy_pct
       -. summary.Audit.avg_accuracy_pct)
    < 1e-9)

let test_audit_feeds_metrics () =
  let before = Option.value (Metrics.find_counter "audit.stages_audited") ~default:0 in
  let audit = Lazy.force smoke_audit in
  ignore (Lazy.force smoke_audit);
  let after = Option.value (Metrics.find_counter "audit.stages_audited") ~default:0 in
  Alcotest.(check bool)
    "audit.stages_audited counted every stage" true
    (after - before >= audit.Audit.overall.Audit.stages || before > 0)

(* ---------- determinism ---------- *)

let test_sequential_equals_parallel () =
  let workloads = Lazy.force smoke_workloads in
  let seq = Lazy.force smoke_audit in
  let par = Audit.run ~dt:10e-12 ~domains:4 ~workloads tech in
  Alcotest.(check bool)
    "4-domain audit measures identically to sequential" true
    (Audit.equal_measurements seq par)

(* ---------- persistence ---------- *)

let test_json_roundtrip () =
  let audit = Lazy.force smoke_audit in
  let through =
    Audit.of_json (Json.of_string (Json.to_string (Audit.to_json audit)))
  in
  Alcotest.(check bool) "bit-exact through JSON text" true (through = audit)

let test_ledger_roundtrip () =
  let audit = Lazy.force smoke_audit in
  let path = Filename.temp_file "tqwm_audit" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sys.remove path;
      Alcotest.(check int) "first append" 1 (Baseline.save ~path audit);
      Alcotest.(check int) "second append" 2 (Baseline.save ~path audit);
      List.iter
        (fun record ->
          (match Json.member "date" record with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.fail "record lacks a date stamp");
          match Json.member "commit" record with
          | Some (Json.String c) ->
            Alcotest.(check bool) "commit stamp non-empty" true (c <> "")
          | _ -> Alcotest.fail "record lacks a commit stamp")
        (Ledger.read path);
      match Baseline.load path with
      | Some loaded ->
        Alcotest.(check bool) "newest record reloads bit-exactly" true
          (loaded = audit)
      | None -> Alcotest.fail "ledger has no loadable baseline")

(* ---------- classification ---------- *)

let test_classify_tolerances () =
  let tol = { Baseline.abs_pp = 0.5; rel = 0.1 } in
  (* margin around baseline 2.0 is 0.5 + 0.2 = 0.7 *)
  let classify current = Baseline.classify tol ~baseline:2.0 ~current in
  Alcotest.(check bool) "inside the band" true (classify 2.69 = Baseline.Unchanged);
  Alcotest.(check bool) "band is symmetric" true (classify 1.31 = Baseline.Unchanged);
  Alcotest.(check bool) "above the band" true (classify 2.71 = Baseline.Regressed);
  Alcotest.(check bool) "below the band" true (classify 1.29 = Baseline.Improved);
  (* the relative term scales with the baseline *)
  let wide = Baseline.classify tol ~baseline:20.0 ~current:22.4 in
  Alcotest.(check bool) "relative slack absorbs 12%% of 20" true
    (wide = Baseline.Unchanged)

let test_self_comparison_unchanged () =
  let audit = Lazy.force smoke_audit in
  let report = Drift.check ~baseline:audit audit in
  Alcotest.(check bool) "no regressions" false (Drift.has_regressions report);
  Alcotest.(check int) "no improvements" 0 (List.length report.Drift.improved);
  Alcotest.(check int) "no unmatched stages" 0 report.Drift.unmatched;
  Alcotest.(check int)
    "every metric unchanged"
    (List.length report.Drift.deltas)
    report.Drift.unchanged;
  Alcotest.(check bool)
    "metrics were actually compared" true
    (report.Drift.deltas <> [])

let test_perturbed_config_regresses () =
  let baseline = Lazy.force smoke_audit in
  let perturbed = Lazy.force perturbed_audit in
  let report = Drift.check ~baseline perturbed in
  Alcotest.(check bool) "loosened NR tolerance regresses" true
    (Drift.has_regressions report);
  (* the report pinpoints the movers: every regression names a metric and
     a workload family, and the per-family tally is consistent *)
  (match Drift.worst report with
  | Some worst ->
    Alcotest.(check bool) "worst excursion is positive" true
      (worst.Baseline.current > worst.Baseline.baseline);
    Alcotest.(check bool) "worst is classified regressed" true
      (worst.Baseline.classification = Baseline.Regressed)
  | None -> Alcotest.fail "no worst regression");
  let tallied =
    List.fold_left (fun acc (_, n) -> acc + n) 0
      report.Drift.regressions_by_workload
  in
  Alcotest.(check int)
    "per-family tally covers every regression"
    (List.length report.Drift.regressed)
    tallied

let test_drift_feeds_counters () =
  let baseline = Lazy.force smoke_audit in
  let perturbed = Lazy.force perturbed_audit in
  let before = Option.value (Metrics.find_counter "audit.regressed") ~default:0 in
  let report = Drift.check ~baseline perturbed in
  let after = Option.value (Metrics.find_counter "audit.regressed") ~default:0 in
  Alcotest.(check int)
    "audit.regressed counter advanced by the report's count"
    (List.length report.Drift.regressed)
    (after - before)

let test_unmatched_stages_counted () =
  let audit = Lazy.force smoke_audit in
  let truncated =
    {
      audit with
      Audit.workloads =
        List.filter
          (fun ((s : Audit.summary), _) -> s.Audit.name <> "decoder-tree")
          audit.Audit.workloads;
    }
  in
  let report = Drift.check ~baseline:truncated audit in
  let decoder_stages =
    List.assoc "decoder-tree"
      (List.map
         (fun ((s : Audit.summary), rs) -> (s.Audit.name, List.length rs))
         audit.Audit.workloads)
  in
  Alcotest.(check int)
    "stages absent from the baseline are flagged unmatched" decoder_stages
    report.Drift.unmatched;
  Alcotest.(check bool)
    "unmatched stages alone do not regress" false
    (Drift.has_regressions report)

let () =
  Alcotest.run "tqwm_audit"
    [
      ("catalog", [ Alcotest.test_case "families and keys" `Quick test_catalog ]);
      ( "accuracy",
        [
          Alcotest.test_case "decoder tree >= 98%" `Slow test_decoder_accuracy;
          Alcotest.test_case "feeds audit.* metrics" `Slow test_audit_feeds_metrics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sequential == 4-domain" `Slow
            test_sequential_equals_parallel;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "JSON round-trip" `Slow test_json_roundtrip;
          Alcotest.test_case "ledger append/load with stamps" `Slow
            test_ledger_roundtrip;
        ] );
      ( "drift",
        [
          Alcotest.test_case "tolerance classification" `Quick
            test_classify_tolerances;
          Alcotest.test_case "self-comparison unchanged" `Slow
            test_self_comparison_unchanged;
          Alcotest.test_case "perturbed solver regresses" `Slow
            test_perturbed_config_regresses;
          Alcotest.test_case "classification counters" `Slow
            test_drift_feeds_counters;
          Alcotest.test_case "unmatched stages" `Slow
            test_unmatched_stages_counted;
        ] );
    ]
