(* Tests for waveform representations, sources and timing metrics. *)

open Tqwm_wave
module Waveform = Waveform
module Source = Source

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- sampled waveforms ---------- *)

let ramp_down = Waveform.of_samples [| (0.0, 3.3); (1.0, 3.3); (2.0, 0.0); (3.0, 0.0) |]

let test_of_samples_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Waveform.of_samples: empty")
    (fun () -> ignore (Waveform.of_samples [||]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Waveform.of_samples: times must be strictly increasing") (fun () ->
      ignore (Waveform.of_samples [| (0.0, 1.0); (0.0, 2.0) |]))

let test_value_at () =
  check_close "on sample" 3.3 (Waveform.value_at ramp_down 1.0);
  check_close "interpolated" 1.65 (Waveform.value_at ramp_down 1.5);
  check_close "before start" 3.3 (Waveform.value_at ramp_down (-1.0));
  check_close "after end" 0.0 (Waveform.value_at ramp_down 10.0)

let test_crossings () =
  (match Waveform.crossings ramp_down ~level:1.65 with
  | [ (t, `Falling) ] -> check_close "crossing time" 1.5 t
  | _ -> Alcotest.fail "expected one falling crossing");
  (match Waveform.first_crossing ramp_down ~level:1.65 ~direction:`Rising with
  | None -> ()
  | Some _ -> Alcotest.fail "no rising crossing expected")

let test_map_values () =
  let inverted = Waveform.map_values (fun v -> 3.3 -. v) ramp_down in
  check_close "mapped" 3.3 (Waveform.value_at inverted 2.5)

(* ---------- piecewise-quadratic waveforms ---------- *)

let quad_fall =
  (* v(t) = 3.3 - t^2 on [0, 1], then linear slope -2 down to 0.3 at t=2 *)
  Waveform.quadratic_of_pieces
    [
      { Waveform.t0 = 0.0; dt = 1.0; v0 = 3.3; dv = 0.0; ddv = -2.0 };
      { Waveform.t0 = 1.0; dt = 1.0; v0 = 2.3; dv = -2.0; ddv = 0.0 };
    ]

let test_quadratic_eval () =
  check_close "start" 3.3 (Waveform.quadratic_value_at quad_fall 0.0);
  check_close "mid piece 1" (3.3 -. 0.25) (Waveform.quadratic_value_at quad_fall 0.5);
  check_close "joint" 2.3 (Waveform.quadratic_value_at quad_fall 1.0);
  check_close "mid piece 2" 1.3 (Waveform.quadratic_value_at quad_fall 1.5);
  check_close "end value" 0.3 (Waveform.quadratic_end_value quad_fall);
  check_close "beyond end clamps" 0.3 (Waveform.quadratic_value_at quad_fall 5.0)

let test_quadratic_validation () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Waveform.quadratic_of_pieces: empty") (fun () ->
      ignore (Waveform.quadratic_of_pieces []));
  Alcotest.check_raises "gap"
    (Invalid_argument "Waveform.quadratic_of_pieces: non-contiguous pieces") (fun () ->
      ignore
        (Waveform.quadratic_of_pieces
           [
             { Waveform.t0 = 0.0; dt = 1.0; v0 = 0.0; dv = 0.0; ddv = 0.0 };
             { Waveform.t0 = 2.0; dt = 1.0; v0 = 0.0; dv = 0.0; ddv = 0.0 };
           ]))

let test_quadratic_crossing_analytic () =
  (* 3.3 - t^2 = 2.9  =>  t = 0.632... *)
  (match Waveform.quadratic_first_crossing quad_fall ~level:2.9 ~direction:`Falling with
  | Some t -> check_close ~eps:1e-9 "crossing in quadratic piece" (sqrt 0.4) t
  | None -> Alcotest.fail "crossing expected");
  (* 2.3 - 2(t-1) = 1.0 => t = 1.65 *)
  (match Waveform.quadratic_first_crossing quad_fall ~level:1.0 ~direction:`Falling with
  | Some t -> check_close "crossing in linear piece" 1.65 t
  | None -> Alcotest.fail "crossing expected")

let prop_quadratic_crossing_vs_sampled =
  QCheck2.Test.make ~name:"analytic crossing agrees with dense sampling" ~count:100
    QCheck2.Gen.(float_range 0.5 3.2)
    (fun level ->
      match Waveform.quadratic_first_crossing quad_fall ~level ~direction:`Falling with
      | None -> level > 3.3 || level < 0.3
      | Some t_exact ->
        let sampled = Waveform.sample_quadratic quad_fall ~dt:1e-4 in
        (match Waveform.first_crossing sampled ~level ~direction:`Falling with
        | Some t_s -> Float.abs (t_s -. t_exact) < 1e-3
        | None -> false))

let test_sample_quadratic () =
  let w = Waveform.sample_quadratic quad_fall ~dt:0.25 in
  check_close "sampled start" 3.3 (Waveform.value_at w 0.0);
  check_close ~eps:0.05 "sampled mid" (3.3 -. 0.25) (Waveform.value_at w 0.5);
  check_close "span end" 2.0 (Waveform.end_time w)

(* ---------- sources ---------- *)

let test_step_source () =
  let s = Source.step ~t0:1.0 ~low:0.0 ~high:3.3 () in
  check_close "before" 0.0 (Source.value s 0.5);
  check_close "after" 3.3 (Source.value s 1.5);
  check_close "derivative" 0.0 (Source.derivative s 1.5);
  Alcotest.(check bool) "is_step" true (Source.is_step s);
  Alcotest.(check (option (float 1e-12))) "transition" (Some 1.0) (Source.transition_time s)

let test_ramp_source () =
  let s = Source.ramp ~t0:0.0 ~low:0.0 ~high:3.3 ~rise_time:1.0 () in
  check_close "mid" 1.65 (Source.value s 0.5);
  check_close "slope" 3.3 (Source.derivative s 0.5);
  check_close "after" 3.3 (Source.value s 2.0);
  check_close "slope after" 0.0 (Source.derivative s 2.0);
  Alcotest.check_raises "bad rise" (Invalid_argument "Source.ramp: rise_time <= 0")
    (fun () -> ignore (Source.ramp ~low:0.0 ~high:1.0 ~rise_time:0.0 ()))

let test_falling_step () =
  let s = Source.falling_step ~t0:0.0 ~high:3.3 ~low:0.0 () in
  check_close "before" 3.3 (Source.value s (-0.1));
  check_close "after" 0.0 (Source.value s 0.1)

let test_source_to_waveform () =
  let s = Source.ramp ~t0:0.0 ~low:0.0 ~high:1.0 ~rise_time:1.0 () in
  let w = Source.to_waveform s ~t_end:2.0 ~dt:0.1 in
  check_close ~eps:1e-6 "sampled value" 0.5 (Waveform.value_at w 0.5)

(* ---------- measurements ---------- *)

let test_delay () =
  let input = Waveform.of_samples [| (0.0, 0.0); (0.1, 3.3); (3.0, 3.3) |] in
  let d =
    Measure.delay ~vdd:3.3 ~input ~output:ramp_down ~output_edge:Measure.Falling
  in
  (match d with
  | Some d -> check_close ~eps:1e-6 "delay" (1.5 -. 0.05) d
  | None -> Alcotest.fail "delay expected");
  (match Measure.delay_from ~t0:0.0 ~vdd:3.3 ~output:ramp_down ~output_edge:Measure.Falling with
  | Some d -> check_close "delay_from" 1.5 d
  | None -> Alcotest.fail "delay expected")

let test_slew () =
  (* falls 3.3 -> 0 linearly between t=1 and t=2: 90%..10% spans 0.8 time *)
  match Measure.slew ~vdd:3.3 ramp_down Measure.Falling with
  | Some s -> check_close ~eps:1e-6 "slew" 0.8 s
  | None -> Alcotest.fail "slew expected"

let test_swing () =
  let lo, hi = Measure.swing ramp_down in
  check_close "lo" 0.0 lo;
  check_close "hi" 3.3 hi

let test_quadratic_delay () =
  match
    Measure.quadratic_delay_from ~t0:0.0 ~vdd:3.3 quad_fall ~output_edge:Measure.Falling
  with
  | Some d -> check_close "50% crossing" (1.0 +. (2.3 -. 1.65) /. 2.0) d
  | None -> Alcotest.fail "delay expected"

(* ---------- comparison ---------- *)

let test_compare_identical () =
  let r = Compare.waveforms ~reference:ramp_down ramp_down in
  check_close "rms zero" 0.0 r.Compare.rms_error;
  check_close "max zero" 0.0 r.Compare.max_error

let test_compare_offset () =
  let shifted = Waveform.map_values (fun v -> v +. 0.33) ramp_down in
  let r = Compare.waveforms ~reference:ramp_down shifted in
  check_close ~eps:1e-6 "rms = offset" 0.33 r.Compare.rms_error;
  check_close ~eps:1e-6 "10% of swing" 10.0 r.Compare.rms_percent_of_swing

let test_compare_zero_length () =
  (* a single-sample waveform spans zero time: nothing to resample *)
  let point = Waveform.of_samples [| (1.5, 2.0) |] in
  Alcotest.check_raises "zero-length reference"
    (Invalid_argument "Compare.waveforms: disjoint spans") (fun () ->
      ignore (Compare.waveforms ~reference:point ramp_down));
  Alcotest.check_raises "zero-length candidate"
    (Invalid_argument "Compare.waveforms: disjoint spans") (fun () ->
      ignore (Compare.waveforms ~reference:ramp_down point))

let test_compare_disjoint_spans () =
  let early = Waveform.of_samples [| (0.0, 0.0); (1.0, 1.0) |] in
  let late = Waveform.of_samples [| (2.0, 1.0); (3.0, 0.0) |] in
  Alcotest.check_raises "disjoint"
    (Invalid_argument "Compare.waveforms: disjoint spans") (fun () ->
      ignore (Compare.waveforms ~reference:early late));
  (* spans touching at exactly one instant are still empty intersections *)
  let touching = Waveform.of_samples [| (1.0, 1.0); (3.0, 0.0) |] in
  Alcotest.check_raises "touching at a point"
    (Invalid_argument "Compare.waveforms: disjoint spans") (fun () ->
      ignore (Compare.waveforms ~reference:early touching));
  Alcotest.check_raises "samples < 2"
    (Invalid_argument "Compare.waveforms: samples < 2") (fun () ->
      ignore (Compare.waveforms ~samples:1 ~reference:ramp_down ramp_down))

let test_accuracy_zero_reference () =
  (* a zero reference delay must never yield NaN/inf accuracy — it is
     rejected outright *)
  Alcotest.check_raises "accuracy at reference = 0"
    (Invalid_argument "Compare.delay_error_percent: bad reference") (fun () ->
      ignore (Compare.accuracy_percent ~reference:0.0 1e-12));
  (* positive references always produce finite values *)
  let a = Compare.accuracy_percent ~reference:1e-15 1e-10 in
  Alcotest.(check bool) "finite accuracy" true (Float.is_finite a)

let test_delay_error_metrics () =
  check_close "error" 10.0 (Compare.delay_error_percent ~reference:100e-12 110e-12);
  check_close "accuracy" 90.0 (Compare.accuracy_percent ~reference:100e-12 110e-12);
  Alcotest.check_raises "bad reference"
    (Invalid_argument "Compare.delay_error_percent: bad reference") (fun () ->
      ignore (Compare.delay_error_percent ~reference:0.0 1.0))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop p = QCheck_alcotest.to_alcotest p in
  Alcotest.run "tqwm_wave"
    [
      ( "sampled",
        [
          quick "validation" test_of_samples_validation;
          quick "value_at" test_value_at;
          quick "crossings" test_crossings;
          quick "map_values" test_map_values;
        ] );
      ( "quadratic",
        [
          quick "eval" test_quadratic_eval;
          quick "validation" test_quadratic_validation;
          quick "crossing analytic" test_quadratic_crossing_analytic;
          prop prop_quadratic_crossing_vs_sampled;
          quick "sampling" test_sample_quadratic;
        ] );
      ( "source",
        [
          quick "step" test_step_source;
          quick "ramp" test_ramp_source;
          quick "falling step" test_falling_step;
          quick "to_waveform" test_source_to_waveform;
        ] );
      ( "measure",
        [
          quick "delay" test_delay;
          quick "slew" test_slew;
          quick "swing" test_swing;
          quick "quadratic delay" test_quadratic_delay;
        ] );
      ( "compare",
        [
          quick "identical" test_compare_identical;
          quick "offset" test_compare_offset;
          quick "zero-length waveform" test_compare_zero_length;
          quick "disjoint spans" test_compare_disjoint_spans;
          quick "zero reference accuracy" test_accuracy_zero_reference;
          quick "delay metrics" test_delay_error_metrics;
        ] );
    ]
