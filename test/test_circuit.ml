(* Tests for the circuit layer: stages, builders, chains, path lowering,
   scenarios, random circuits, the catalog and CCC extraction. *)

open Tqwm_device
open Tqwm_circuit

let tech = Tech.cmosp35

let golden = Models.golden tech

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- stage builder ---------- *)

let test_stage_builder_basics () =
  let stage = Builders.nand ~n:3 tech in
  Alcotest.(check int) "nodes: vdd gnd out x1 x2" 5 stage.Stage.num_nodes;
  Alcotest.(check int) "edges: 3 nmos + 3 pmos" 6 (Array.length stage.Stage.edges);
  Alcotest.(check (list string)) "inputs deduplicated" [ "a1"; "a2"; "a3" ]
    (Stage.inputs stage);
  let out = Builders.output_exn stage in
  Alcotest.(check string) "output name" "out" (Stage.node_name stage out);
  Alcotest.(check int) "incident at out: top nmos + 3 pmos" 4
    (List.length (Stage.incident stage out))

let test_stage_builder_errors () =
  let b = Stage.create () in
  let n = Stage.add_node b "n" in
  Alcotest.check_raises "transistor needs gate"
    (Invalid_argument "Stage.add_edge: transistor without a gate input") (fun () ->
      Stage.add_edge b (Device.nmos ~w:1e-6 tech) ~src:n ~snk:(Stage.ground b));
  Alcotest.check_raises "wire cannot have gate"
    (Invalid_argument "Stage.add_edge: wire with a gate input") (fun () ->
      Stage.add_edge b ~gate:"x" (Device.wire ~w:1e-6 ~l:1e-6) ~src:n
        ~snk:(Stage.ground b));
  Alcotest.check_raises "self loop" (Invalid_argument "Stage.add_edge: self-loop")
    (fun () -> Stage.add_edge b (Device.wire ~w:1e-6 ~l:1e-6) ~src:n ~snk:n)

let test_node_capacitance_sums () =
  let load = 7e-15 in
  let stage = Builders.inverter ~load tech in
  let out = Builders.output_exn stage in
  let c = Stage.node_capacitance golden stage out ~v:1.0 in
  let manual =
    List.fold_left
      (fun acc (e : Stage.edge) ->
        acc
        +.
        if e.Stage.src = out then golden.Device_model.src_cap e.device ~v:1.0
        else golden.Device_model.snk_cap e.device ~v:1.0)
      load (Stage.incident stage out)
  in
  check_close "cap = device terms + load" manual c;
  check_close "rails report zero" 0.0
    (Stage.node_capacitance golden stage stage.Stage.supply ~v:1.0)

(* ---------- chain ---------- *)

let test_chain_validation () =
  let nmos = Device.nmos ~w:1e-6 tech in
  Alcotest.check_raises "empty" (Invalid_argument "Chain.make: empty chain") (fun () ->
      ignore (Chain.make ~rail:Chain.Pull_down ~edges:[] ~caps:[]));
  Alcotest.check_raises "cap mismatch"
    (Invalid_argument "Chain.make: edge/capacitance count mismatch") (fun () ->
      ignore
        (Chain.make ~rail:Chain.Pull_down
           ~edges:[ { Chain.device = nmos; gate = Some "g" } ]
           ~caps:[ 1e-15; 2e-15 ]));
  Alcotest.check_raises "gateless transistor"
    (Invalid_argument "Chain.make: transistor edge without gate") (fun () ->
      ignore
        (Chain.make ~rail:Chain.Pull_down
           ~edges:[ { Chain.device = nmos; gate = None } ]
           ~caps:[ 1e-15 ]))

let test_chain_positions () =
  let chain =
    Chain.make ~rail:Chain.Pull_down
      ~edges:
        [
          { Chain.device = Device.nmos ~w:1e-6 tech; gate = Some "g1" };
          { Chain.device = Device.wire ~w:1e-6 ~l:10e-6; gate = None };
          { Chain.device = Device.nmos ~w:1e-6 tech; gate = Some "g2" };
        ]
      ~caps:[ 1e-15; 1e-15; 1e-15 ]
  in
  Alcotest.(check (list int)) "transistor positions" [ 1; 3 ]
    (Chain.transistor_positions chain);
  Alcotest.(check int) "output node" 3 (Chain.output_node chain)

(* ---------- path lowering ---------- *)

let test_path_nand_lowering () =
  let scenario = Scenario.nand_falling ~n:4 tech in
  let lowering = Scenario.lower ~model:golden scenario in
  let chain = lowering.Path.chain in
  Alcotest.(check int) "chain has 4 series transistors" 4 (Chain.length chain);
  (* bottom-up order: x1 x2 x3 out *)
  let names =
    Array.to_list lowering.Path.stage_nodes
    |> List.map (Stage.node_name scenario.Scenario.stage)
  in
  Alcotest.(check (list string)) "order" [ "x1"; "x2"; "x3"; "out" ] names;
  Array.iter
    (fun c -> Alcotest.(check bool) "caps positive" true (c > 0.0))
    chain.Chain.caps;
  (* the output node carries the PMOS junctions: it must dominate *)
  let out_cap = chain.Chain.caps.(3) and mid_cap = chain.Chain.caps.(1) in
  Alcotest.(check bool) "output cap largest" true (out_cap > mid_cap)

let test_path_requires_conducting () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  (match
     Path.to_chain ~model:golden ~rail:Chain.Pull_down
       ~output:scenario.Scenario.output
       ~conducting:(fun _ -> false)
       ~bias:(fun _ -> 1.0)
       scenario.Scenario.stage
   with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

let test_conducting_excludes_pmos_on_fall () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let pmos_edge =
    Array.to_list scenario.Scenario.stage.Stage.edges
    |> List.find (fun (e : Stage.edge) -> e.device.Device.kind = Device.Pmos)
  in
  Alcotest.(check bool) "pmos off when inputs settle high" false
    (Scenario.conducting scenario pmos_edge);
  let nmos_edge =
    Array.to_list scenario.Scenario.stage.Stage.edges
    |> List.find (fun (e : Stage.edge) -> e.device.Device.kind = Device.Nmos)
  in
  Alcotest.(check bool) "nmos on" true (Scenario.conducting scenario nmos_edge)

(* ---------- scenarios ---------- *)

let test_precharge_fixed_point () =
  let vp = Scenario.precharge_voltage tech in
  check_close ~eps:1e-9 "v = vdd - vth(v)"
    (tech.Tech.vdd -. Mosfet.threshold tech Mosfet.N ~vsb:vp)
    vp;
  let vpp = Scenario.predischarge_voltage tech in
  check_close ~eps:1e-9 "v = vthp(vdd - v)"
    (Mosfet.threshold tech Mosfet.P ~vsb:(tech.Tech.vdd -. vpp))
    vpp

let test_scenario_sources_complete () =
  List.iter
    (fun scenario ->
      List.iter
        (fun input ->
          match Scenario.source scenario input with
          | (_ : Tqwm_wave.Source.t) -> ()
          | exception Not_found ->
            Alcotest.failf "%s: input %s has no source" scenario.Scenario.name input)
        (Stage.inputs scenario.Scenario.stage))
    [
      Scenario.inverter_falling tech;
      Scenario.nand_falling ~n:3 tech;
      Scenario.nor_rising ~n:2 tech;
      Scenario.stack_falling ~widths:(Array.make 5 1e-6) tech;
      Scenario.manchester ~bits:4 tech;
      Scenario.decoder ~levels:2 tech;
    ]

let test_scenario_initial_rails () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let stage = scenario.Scenario.stage in
  check_close "vdd pinned" tech.Tech.vdd scenario.Scenario.initial.(stage.Stage.supply);
  check_close "gnd pinned" 0.0 scenario.Scenario.initial.(stage.Stage.ground);
  Alcotest.(check int) "initial per node" stage.Stage.num_nodes
    (Array.length scenario.Scenario.initial)

let test_with_ramp_input () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let ramped = Scenario.with_ramp_input ~rise_time:50e-12 scenario in
  let src = Scenario.source ramped "a1" in
  Alcotest.(check bool) "no longer a step" false (Tqwm_wave.Source.is_step src);
  check_close "half-way value" (tech.Tech.vdd /. 2.0)
    (Tqwm_wave.Source.value src 25e-12);
  (* the held-high inputs stay constant *)
  let held = Scenario.source ramped "a2" in
  check_close "held input" tech.Tech.vdd (Tqwm_wave.Source.value held 0.0)

(* ---------- builders: structures ---------- *)

let test_manchester_structure () =
  let stage = Builders.manchester ~bits:5 tech in
  (* 1 pull-down + 5 pass + 6 precharge PMOS *)
  Alcotest.(check int) "edges" 12 (Array.length stage.Stage.edges);
  let pmos_count =
    Array.to_list stage.Stage.edges
    |> List.filter (fun (e : Stage.edge) -> e.device.Device.kind = Device.Pmos)
    |> List.length
  in
  Alcotest.(check int) "precharge devices" 6 pmos_count

let test_decoder_structure () =
  let segments = 4 and levels = 3 in
  let stage = Builders.decoder_path ~levels ~wire_segments:segments tech in
  let wires =
    Array.to_list stage.Stage.edges
    |> List.filter (fun (e : Stage.edge) -> e.device.Device.kind = Device.Wire)
  in
  Alcotest.(check int) "wire segments" (segments * levels) (List.length wires);
  (* wire lengths double per level *)
  let lengths = List.map (fun (e : Stage.edge) -> e.device.Device.l) wires in
  let lmin = List.fold_left Float.min infinity lengths in
  let lmax = List.fold_left Float.max 0.0 lengths in
  check_close ~eps:1e-9 "exponential growth" (2.0 ** float_of_int (levels - 1))
    (lmax /. lmin)

let test_nor_structure () =
  let stage = Builders.nor ~n:3 tech in
  Alcotest.(check int) "edges" 6 (Array.length stage.Stage.edges);
  (* series PMOS: supply side chain *)
  let from_supply = Stage.incident stage stage.Stage.supply in
  Alcotest.(check int) "single pmos at supply" 1 (List.length from_supply)

let test_aoi_oai_structure () =
  let aoi = Builders.aoi21 tech in
  Alcotest.(check int) "aoi edges" 6 (Array.length aoi.Stage.edges);
  Alcotest.(check (list string)) "aoi inputs" [ "b"; "a"; "c" ] (Stage.inputs aoi);
  let oai = Builders.oai21 tech in
  Alcotest.(check int) "oai edges" 6 (Array.length oai.Stage.edges);
  (* worst-case falling path of the AOI goes through the series pair, not
     the (off) parallel branch *)
  let scenario = Scenario.aoi21_falling tech in
  let lowering = Scenario.lower ~model:golden scenario in
  Alcotest.(check int) "aoi falling path length" 2
    (Chain.length lowering.Path.chain);
  let names =
    Array.to_list lowering.Path.stage_nodes |> List.map (Stage.node_name scenario.Scenario.stage)
  in
  Alcotest.(check (list string)) "path through x" [ "x"; "out" ] names

let test_side_branch_capacitance_folded () =
  (* the conducting c-PMOS slaves node y onto the AOI output: the chain's
     output cap must exceed the bare node capacitance *)
  let scenario = Scenario.aoi21_falling tech in
  let lowering = Scenario.lower ~model:golden scenario in
  let chain_cap = lowering.Path.chain.Chain.caps.(1) in
  let bare =
    Stage.node_capacitance golden scenario.Scenario.stage scenario.Scenario.output
      ~v:scenario.Scenario.initial.(scenario.Scenario.output)
  in
  Alcotest.(check bool) "side branch adds capacitance" true (chain_cap > bare +. 1e-16)

let test_builder_validation () =
  Alcotest.check_raises "nand n<1" (Invalid_argument "Builders.nand: n < 1") (fun () ->
      ignore (Builders.nand ~n:0 tech));
  Alcotest.check_raises "stack empty"
    (Invalid_argument "Builders.nmos_stack: empty widths") (fun () ->
      ignore (Builders.nmos_stack ~widths:[||] tech))

(* ---------- random circuits and catalog ---------- *)

let test_random_deterministic () =
  let w1 = Random_circuits.widths tech ~len:7 ~seed:42 in
  let w2 = Random_circuits.widths tech ~len:7 ~seed:42 in
  Alcotest.(check bool) "same seed, same widths" true (w1 = w2);
  let w3 = Random_circuits.widths tech ~len:7 ~seed:43 in
  Alcotest.(check bool) "different seed differs" true (w1 <> w3);
  Array.iter
    (fun w ->
      Alcotest.(check bool) "bounded" true (w >= tech.Tech.w_min && w <= 6.0 *. tech.Tech.w_min))
    w1

let test_table2_suite_population () =
  let suite = Random_circuits.table2_suite tech in
  Alcotest.(check int) "6 lengths x 3 configs" 18 (List.length suite)

let test_catalog () =
  List.iter
    (fun name ->
      match Catalog.scenario tech name with
      | (_ : Scenario.t) -> ()
      | exception Not_found -> Alcotest.failf "catalog rejected %s" name)
    [ "inv"; "nand2"; "nand4"; "nor3"; "stack7"; "manchester5"; "decoder3"; "ckt6_2" ];
  (match Catalog.scenario tech "bogus" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  let s = Catalog.scenario tech "ckt6_2" in
  Alcotest.(check string) "random stack name" "ckt6_2" s.Scenario.name

(* ---------- netlist and CCC ---------- *)

let two_inverter_netlist () =
  let b = Netlist.create () in
  let a = Netlist.add_node b "a" in
  let x = Netlist.add_node b "x" in
  let y = Netlist.add_node b "y" in
  let wn = tech.Tech.w_min and wp = 2.0 *. tech.Tech.w_min in
  Netlist.add_transistor b (Device.nmos ~w:wn tech) ~gate:a ~src:x ~snk:(Netlist.ground b);
  Netlist.add_transistor b (Device.pmos ~w:wp tech) ~gate:a ~src:(Netlist.supply b) ~snk:x;
  Netlist.add_transistor b (Device.nmos ~w:wn tech) ~gate:x ~src:y ~snk:(Netlist.ground b);
  Netlist.add_transistor b (Device.pmos ~w:wp tech) ~gate:x ~src:(Netlist.supply b) ~snk:y;
  Netlist.mark_primary_input b a;
  Netlist.mark_primary_output b y;
  (Netlist.finish b, a, x, y)

let test_ccc_two_components () =
  let net, _, x, y = two_inverter_netlist () in
  let ex = Ccc.extract net in
  Alcotest.(check int) "two components" 2 (Array.length ex.Ccc.instances);
  (* x and y live in different components *)
  (match (ex.Ccc.component_of x, ex.Ccc.component_of y) with
  | Some cx, Some cy -> Alcotest.(check bool) "distinct" true (cx <> cy)
  | _ -> Alcotest.fail "components expected");
  Alcotest.(check (option int)) "rails have no component" None
    (ex.Ccc.component_of net.Netlist.supply)

let test_ccc_inputs_and_outputs () =
  let net, _, x, _ = two_inverter_netlist () in
  let ex = Ccc.extract net in
  let cx = Option.get (ex.Ccc.component_of x) in
  let first = ex.Ccc.instances.(cx) in
  Alcotest.(check (list string)) "first stage driven by a" [ "a" ]
    (List.map fst first.Ccc.input_nets);
  (* x drives the second stage's gates: it must be an output of stage 1 *)
  let sx = Option.get (first.Ccc.stage_node_of x) in
  Alcotest.(check bool) "x marked output" true
    (List.mem sx first.Ccc.stage.Stage.outputs)

let test_ccc_gate_load () =
  let net, _, x, _ = two_inverter_netlist () in
  let gate_load (d : Device.t) = Capacitance.gate tech ~w:d.Device.w ~l:d.Device.l in
  let ex = Ccc.extract ~gate_load net in
  let cx = Option.get (ex.Ccc.component_of x) in
  let inst = ex.Ccc.instances.(cx) in
  let sx = Option.get (inst.Ccc.stage_node_of x) in
  let expected =
    gate_load (Device.nmos ~w:tech.Tech.w_min tech)
    +. gate_load (Device.pmos ~w:(2.0 *. tech.Tech.w_min) tech)
  in
  check_close "fanout gate caps loaded onto x" expected
    inst.Ccc.stage.Stage.loads.(sx)

let test_ccc_rail_to_rail_rejected () =
  let b = Netlist.create () in
  let g = Netlist.add_node b "g" in
  Netlist.add_transistor b (Device.nmos ~w:1e-6 tech) ~gate:g ~src:(Netlist.supply b)
    ~snk:(Netlist.ground b);
  let net = Netlist.finish b in
  Alcotest.check_raises "rail-to-rail"
    (Invalid_argument "Ccc.extract: element with both terminals on rails") (fun () ->
      ignore (Ccc.extract net))

(* ---------- netlist parser ---------- *)

let inverter_chain_deck = {|
* two-inverter chain
M1 x a gnd nmos W=0.8u
M2 vdd a x pmos W=1.6u
M3 y x gnd nmos
M4 vdd x y pmos L=0.7u
Cy y 12f
Wstub y z W=0.6u L=40u
.input a
.output y
.end
|}

let test_parser_roundtrip () =
  let net = Netlist_parser.parse_string tech inverter_chain_deck in
  (* vdd gnd a x y z *)
  Alcotest.(check int) "nodes" 6 net.Netlist.num_nodes;
  Alcotest.(check int) "elements" 5 (Array.length net.Netlist.elements);
  let y = Netlist.find_node net "y" in
  check_close "load parsed" 12e-15 net.Netlist.loads.(y);
  Alcotest.(check (list int)) "primary outputs" [ y ] net.Netlist.primary_outputs;
  (* geometry parsing: explicit, default, L override *)
  let m1 = net.Netlist.elements.(0) and m3 = net.Netlist.elements.(2) in
  check_close "explicit width" 0.8e-6 m1.Netlist.device.Device.w;
  check_close "default nmos width" tech.Tech.w_min m3.Netlist.device.Device.w;
  let m4 = net.Netlist.elements.(3) in
  check_close "length override" 0.7e-6 m4.Netlist.device.Device.l;
  (* terminal orientation: nmos src = drain; pmos src = source (vdd) *)
  Alcotest.(check int) "nmos supply-side is drain" (Netlist.find_node net "x")
    m1.Netlist.src;
  let m2 = net.Netlist.elements.(1) in
  Alcotest.(check int) "pmos supply-side is source" net.Netlist.supply m2.Netlist.src

let test_parser_with_ccc () =
  let net = Netlist_parser.parse_string tech inverter_chain_deck in
  let ex = Ccc.extract net in
  (* inverter 1, inverter 2 + wire stub: z is channel-connected to y *)
  Alcotest.(check int) "two stages" 2 (Array.length ex.Ccc.instances);
  let y = Netlist.find_node net "y" and z = Netlist.find_node net "z" in
  Alcotest.(check bool) "wire keeps y and z in one stage" true
    (ex.Ccc.component_of y = ex.Ccc.component_of z)

let test_parser_si_suffixes () =
  let deck = "Cbig n1 1.5p\nCsmall n2 800f\nWseg n1 n2 W=600n L=0.1m\n" in
  let net = Netlist_parser.parse_string tech deck in
  let n1 = Netlist.find_node net "n1" and n2 = Netlist.find_node net "n2" in
  check_close "picofarad" 1.5e-12 net.Netlist.loads.(n1);
  check_close "femtofarad" 800e-15 net.Netlist.loads.(n2);
  let w = net.Netlist.elements.(0) in
  check_close "nanometre width" 600e-9 w.Netlist.device.Device.w;
  check_close "milli length" 1e-4 w.Netlist.device.Device.l

let expect_parse_error deck expected_line =
  match Netlist_parser.parse_string tech deck with
  | exception Netlist_parser.Parse_error { line; _ } ->
    Alcotest.(check int) "error line" expected_line line
  | _ -> Alcotest.fail "expected Parse_error"

let test_parser_errors () =
  expect_parse_error "M1 a b nmos\n" 1;  (* missing terminal *)
  expect_parse_error "Q1 a b c\n" 1;  (* unknown card *)
  expect_parse_error "M1 d g s nmos W=2x\n" 1;  (* bad suffix *)
  expect_parse_error "* fine\nWseg a b W=1u\n" 2;  (* wire without length *)
  expect_parse_error ".input\n" 1

let expect_parse_error_matching deck expected_line fragment =
  match Netlist_parser.parse_string tech deck with
  | exception Netlist_parser.Parse_error { line; message } ->
    Alcotest.(check int) "error line" expected_line line;
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    if not (contains message fragment) then
      Alcotest.failf "error %S does not mention %S" message fragment
  | _ -> Alcotest.fail "expected Parse_error"

let test_parser_malformed_line () =
  (* a parameter token without '=' is rejected, not silently dropped *)
  expect_parse_error_matching "M1 d g s nmos W\n" 1 "key=value";
  expect_parse_error_matching "Cload out\n" 1 "capacitor card";
  expect_parse_error_matching ".option foo\n" 1 "unknown directive"

let test_parser_unknown_device () =
  expect_parse_error_matching "M1 d g s bjt W=1u\n" 1 "unknown transistor type";
  expect_parse_error_matching "X1 a b sub\n" 1 "unknown card"

let test_parser_dangling_node () =
  (* port 'a' is declared but no element touches it; reported at the
     .input directive's line even though parsing runs to completion *)
  expect_parse_error_matching "M1 x b gnd nmos\n.input a\n.output x\n.end\n" 2
    "dangling port node \"a\"";
  expect_parse_error_matching "M1 x b gnd nmos\n.input b\n.output y\n.end\n" 3
    "dangling port node \"y\"";
  (* gate-only and terminal-only connections both count as touched *)
  let net =
    Netlist_parser.parse_string tech "M1 x b gnd nmos\n.input b\n.output x\n.end\n"
  in
  Alcotest.(check int) "clean deck still parses" 1 (Array.length net.Netlist.elements)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tqwm_circuit"
    [
      ( "stage",
        [
          quick "builder basics" test_stage_builder_basics;
          quick "builder errors" test_stage_builder_errors;
          quick "node capacitance" test_node_capacitance_sums;
        ] );
      ( "chain",
        [ quick "validation" test_chain_validation; quick "positions" test_chain_positions ] );
      ( "path",
        [
          quick "nand lowering" test_path_nand_lowering;
          quick "requires conducting" test_path_requires_conducting;
          quick "conducting predicate" test_conducting_excludes_pmos_on_fall;
        ] );
      ( "scenario",
        [
          quick "precharge fixed points" test_precharge_fixed_point;
          quick "sources complete" test_scenario_sources_complete;
          quick "initial rails" test_scenario_initial_rails;
          quick "ramp input" test_with_ramp_input;
        ] );
      ( "builders",
        [
          quick "manchester" test_manchester_structure;
          quick "decoder" test_decoder_structure;
          quick "nor" test_nor_structure;
          quick "aoi/oai" test_aoi_oai_structure;
          quick "side-branch capacitance" test_side_branch_capacitance_folded;
          quick "validation" test_builder_validation;
        ] );
      ( "random+catalog",
        [
          quick "deterministic" test_random_deterministic;
          quick "table2 population" test_table2_suite_population;
          quick "catalog" test_catalog;
        ] );
      ( "ccc",
        [
          quick "two components" test_ccc_two_components;
          quick "inputs/outputs" test_ccc_inputs_and_outputs;
          quick "gate load" test_ccc_gate_load;
          quick "rail-to-rail" test_ccc_rail_to_rail_rejected;
        ] );
      ( "parser",
        [
          quick "roundtrip" test_parser_roundtrip;
          quick "with ccc" test_parser_with_ccc;
          quick "si suffixes" test_parser_si_suffixes;
          quick "errors" test_parser_errors;
          quick "malformed line" test_parser_malformed_line;
          quick "unknown device" test_parser_unknown_device;
          quick "dangling node" test_parser_dangling_node;
        ] );
    ]
