(* Tests for the incremental STA engine: after any edit sequence, the
   session's analysis must be bit-identical to a from-scratch
   propagation of the edited graph (epsilon = 0), with or without a
   shared stage cache, sequentially or across domains — and a local
   edit must re-evaluate only its fanout cone. *)

open Tqwm_device
open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Metrics = Tqwm_obs.Metrics
module Edit = Tqwm_incr.Edit
module Cone = Tqwm_incr.Cone
module Session = Tqwm_incr.Session
module Script = Tqwm_incr.Script

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

let check_identical what (a : Arrival.analysis) (b : Arrival.analysis) =
  Alcotest.(check int)
    (what ^ ": same stage count")
    (Array.length a.Arrival.timings)
    (Array.length b.Arrival.timings);
  Array.iteri
    (fun i (ta : Arrival.stage_timing) ->
      let tb = b.Arrival.timings.(i) in
      if ta <> tb then
        Alcotest.failf
          "%s: stage %d differs (arrival_out %.17g vs %.17g, slew %.17g vs %.17g)"
          what i ta.Arrival.arrival_out tb.Arrival.arrival_out ta.Arrival.slew
          tb.Arrival.slew)
    a.Arrival.timings;
  Alcotest.(check bool)
    (what ^ ": worst arrival bit-equal")
    true
    (a.Arrival.worst_arrival = b.Arrival.worst_arrival)

let session ?cache ?domains ?parallel_threshold ?epsilon graph =
  Session.create ~model:(Lazy.force table) ?cache ?domains ?parallel_threshold
    ?epsilon graph

(* a deterministic stream of always-valid edits: resize / load / retime,
   uniformly over the graph's stages *)
let random_edit rng graph =
  let n = Timing_graph.num_stages graph in
  let stage = Random.State.int rng n in
  match Random.State.int rng 3 with
  | 0 ->
    let scenario = Timing_graph.scenario graph stage in
    let edges = Array.length scenario.Scenario.stage.Stage.edges in
    Edit.Resize_device
      {
        stage;
        edge = Random.State.int rng edges;
        scale = 0.5 +. Random.State.float rng 1.5;
      }
  | 1 -> Edit.Set_load { stage; load = Random.State.float rng 25e-15 }
  | _ ->
    Edit.Retime_input
      {
        stage;
        arrival = Random.State.float rng 40e-12;
        slew = Random.State.float rng 60e-12;
      }

(* apply [edits] random edits one at a time, checking incremental
   against from-scratch after every step *)
let check_edit_sequence what ?cache ?domains ?parallel_threshold ~edits ~seed graph =
  let s = session ?cache ?domains ?parallel_threshold graph in
  let rng = Random.State.make [| seed |] in
  check_identical (what ^ " (initial)") (Session.analysis s) (Session.scratch_analysis s);
  for k = 1 to edits do
    ignore (Session.apply s (random_edit rng (Session.graph s)));
    check_identical
      (Printf.sprintf "%s (edit %d)" what k)
      (Session.analysis s) (Session.scratch_analysis s)
  done;
  s

(* ---------- equivalence across workloads / cache / domains ---------- *)

let test_equiv_chain () =
  ignore (check_edit_sequence "chain, no cache" ~edits:8 ~seed:11 (Workloads.chain ~n:12 tech));
  ignore
    (check_edit_sequence "chain, shared cache" ~cache:(Stage_cache.create ()) ~edits:8
       ~seed:11 (Workloads.chain ~n:12 tech))

let test_equiv_random_stacks () =
  ignore
    (check_edit_sequence "stacks, no cache" ~edits:6 ~seed:23
       (Workloads.random_stacks ~width:4 ~depth:3 ~seed:5 tech));
  ignore
    (check_edit_sequence "stacks, shared cache" ~cache:(Stage_cache.create ()) ~edits:6
       ~seed:23
       (Workloads.random_stacks ~width:4 ~depth:3 ~seed:5 tech))

let test_equiv_decoder () =
  ignore
    (check_edit_sequence "decoder, shared cache" ~cache:(Stage_cache.create ())
       ~edits:8 ~seed:37
       (Workloads.decoder_tree ~fanout:3 ~depth:2 ~levels:2 tech))

let test_equiv_parallel () =
  (* 4 domains with a threshold low enough that wide dirty levels really
     do take the parallel path *)
  ignore
    (check_edit_sequence "decoder, 4 domains" ~domains:4 ~parallel_threshold:2
       ~edits:6 ~seed:41
       (Workloads.decoder_tree ~fanout:3 ~depth:2 ~levels:2 tech));
  ignore
    (check_edit_sequence "decoder, 4 domains + cache" ~cache:(Stage_cache.create ())
       ~domains:4 ~parallel_threshold:2 ~edits:6 ~seed:41
       (Workloads.decoder_tree ~fanout:3 ~depth:2 ~levels:2 tech))

(* ---------- topology edits ---------- *)

let test_equiv_topology () =
  let s = session ~cache:(Stage_cache.create ()) (Workloads.diamond tech) in
  let check what = check_identical what (Session.analysis s) (Session.scratch_analysis s) in
  check "diamond";
  (* graft a new sink under the old one, then cut the slow branch *)
  let id = Session.add_stage s (Scenario.nand_falling ~n:2 tech) in
  ignore (Session.apply s (Edit.Connect { from_stage = 3; to_stage = id; input = "a1" }));
  check "after add+connect";
  ignore
    (Session.apply s (Edit.Disconnect { from_stage = 0; to_stage = 2; input = "a1" }));
  check "after disconnect";
  ignore (Session.apply s (Edit.Remove_stage 2));
  check "after remove";
  (* diamond's 4 edges, +1 connect, -1 disconnect, -1 left on stage 2 *)
  Alcotest.(check int) "edge count" 3
    (Timing_graph.num_connections (Session.graph s));
  (* the detached stage is still timed, as an isolated primary input *)
  Alcotest.(check int) "stage count stable" 5
    (Array.length (Session.analysis s).Arrival.timings)

let test_invalid_edits_leave_session_consistent () =
  let s = session (Workloads.diamond tech) in
  let before = Session.analysis s in
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Timing_graph.connect: duplicate edge") (fun () ->
      ignore
        (Session.apply s
           (Edit.Connect
              {
                from_stage = 0;
                to_stage = 1;
                input = Workloads.switching_input (Timing_graph.scenario (Session.graph s) 1);
              })));
  Alcotest.check_raises "unknown stage"
    (Invalid_argument "Session.apply (Retime_input): unknown stage 99") (fun () ->
      ignore (Session.apply s (Edit.Retime_input { stage = 99; arrival = 0.; slew = 0. })));
  check_identical "unchanged after rejected edits" before (Session.analysis s);
  check_identical "still matches scratch" (Session.analysis s) (Session.scratch_analysis s)

(* ---------- retiming ---------- *)

let test_equiv_retime () =
  let s = session ~cache:(Stage_cache.create ()) (Workloads.chain ~n:6 tech) in
  ignore
    (Session.apply s (Edit.Retime_input { stage = 0; arrival = 12e-12; slew = 35e-12 }));
  let a = Session.analysis s in
  check_identical "retimed chain" a (Session.scratch_analysis s);
  Alcotest.(check bool) "later arrival shifts the head stage" true
    (a.Arrival.timings.(0).Arrival.arrival_out > 12e-12);
  (* slew <= 0 shifts arrival only: source shapes stay the scenario's own *)
  ignore
    (Session.apply s (Edit.Retime_input { stage = 0; arrival = 12e-12; slew = 0. }));
  check_identical "arrival-only retime" (Session.analysis s) (Session.scratch_analysis s)

(* ---------- cutoff ---------- *)

let test_cutoff_on_neutral_edit () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 ~levels:2 tech in
  let s = session ~cache:(Stage_cache.create ()) graph in
  ignore (Session.analysis s);
  let counter_value name =
    Option.value (List.assoc_opt name (Metrics.counters_alist ())) ~default:0
  in
  let reeval0 = counter_value "incr.stages_reeval" in
  let cutoff0 = counter_value "incr.cutoff_hits" in
  (* scale = 1.0 re-times the edited stage to exactly its old record, so
     the wavefront dies there: one re-evaluation, one cutoff hit *)
  ignore (Session.apply s (Edit.Resize_device { stage = 0; edge = 0; scale = 1.0 }));
  ignore (Session.analysis s);
  let stats = Session.stats s in
  Alcotest.(check int) "one stage re-evaluated" 1 stats.Session.last_reeval;
  Alcotest.(check int) "counter: stages_reeval +1" (reeval0 + 1)
    (counter_value "incr.stages_reeval");
  Alcotest.(check int) "counter: cutoff_hits +1" (cutoff0 + 1)
    (counter_value "incr.cutoff_hits");
  check_identical "still exact" (Session.analysis s) (Session.scratch_analysis s)

let test_cone_bounds_reeval () =
  let graph = Workloads.decoder_tree ~fanout:4 ~depth:3 tech in
  let n = Timing_graph.num_stages graph in
  let frozen = Timing_graph.freeze graph in
  (* a leaf stage: last in topological order, empty fanout *)
  let leaf =
    Array.to_list frozen.Timing_graph.order
    |> List.find (fun id -> Array.length frozen.Timing_graph.fanout.(id) = 0)
  in
  let cone = Cone.fanout_cone frozen [ leaf ] in
  Alcotest.(check int) "leaf cone is itself" 1 (Cone.size cone);
  let s = session ~cache:(Stage_cache.create ()) graph in
  ignore (Session.analysis s);
  ignore (Session.apply s (Edit.Set_load { stage = leaf; load = 15e-15 }));
  let reeval = Session.recompute s in
  Alcotest.(check int) "leaf edit re-times one stage" 1 reeval;
  (* an internal edit re-times at most its cone — far below 20% here *)
  ignore (Session.apply s (Edit.Resize_device { stage = leaf - 1; edge = 0; scale = 1.3 }));
  let reeval = Session.recompute s in
  let bound = Cone.size (Cone.fanout_cone frozen [ leaf - 1 ]) in
  Alcotest.(check bool)
    (Printf.sprintf "reeval %d <= cone %d" reeval bound)
    true (reeval <= bound);
  Alcotest.(check bool)
    (Printf.sprintf "reeval %d < 20%% of %d stages" reeval n)
    true
    (float_of_int reeval < 0.2 *. float_of_int n);
  check_identical "still exact" (Session.analysis s) (Session.scratch_analysis s)

(* ---------- epsilon > 0 ---------- *)

let test_epsilon_suppresses_propagation () =
  let exact = session (Workloads.chain ~n:10 tech) in
  (* huge tolerance: any recomputed stage counts as unchanged, so the
     wavefront can't spread past the edited stage itself *)
  let loose = session ~epsilon:1.0 (Workloads.chain ~n:10 tech) in
  ignore (Session.analysis exact);
  ignore (Session.analysis loose);
  let edit = Edit.Resize_device { stage = 2; edge = 0; scale = 1.7 } in
  ignore (Session.apply exact edit);
  ignore (Session.apply loose edit);
  let exact_n = Session.recompute exact and loose_n = Session.recompute loose in
  Alcotest.(check int) "epsilon=1s stops at the edited stage" 1 loose_n;
  Alcotest.(check bool) "exact run re-times the downstream chain" true (exact_n > 1);
  Alcotest.(check int) "loose cutoff recorded" 1 (Session.stats loose).Session.cutoff_hits;
  (* the edited stage's own record is still fresh even under cutoff *)
  let la = Session.analysis loose and ea = Session.analysis exact in
  Alcotest.(check bool) "edited stage re-timed exactly" true
    (la.Arrival.timings.(2) = ea.Arrival.timings.(2))

(* ---------- what-if queries ---------- *)

let test_query_paths () =
  let s = session (Workloads.diamond tech) in
  (match Session.query s ~from_stage:0 ~to_stage:3 with
  | None -> Alcotest.fail "diamond: 0 -> 3 must be reachable"
  | Some q ->
    (* worst path routes through the slow branch (stage 2) *)
    Alcotest.(check (list int)) "worst path" [ 0; 2; 3 ] q.Session.stages;
    let t = (Session.analysis s).Arrival.timings in
    let expect =
      t.(0).Arrival.arrival_out +. t.(2).Arrival.delay +. t.(3).Arrival.delay
    in
    Alcotest.(check bool) "arrival accumulates current delays" true
      (Float.abs (q.Session.arrival -. expect) < 1e-18));
  (match Session.query s ~from_stage:1 ~to_stage:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "parallel branches must not be connected");
  (match Session.query s ~from_stage:3 ~to_stage:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "queries follow edge direction");
  Alcotest.check_raises "unknown stage"
    (Invalid_argument "Session.query: unknown stage 9") (fun () ->
      ignore (Session.query s ~from_stage:0 ~to_stage:9))

(* ---------- construction / validation ---------- *)

let test_create_validation () =
  Alcotest.check_raises "default_slew <= 0"
    (Invalid_argument "Session.create: default_slew <= 0") (fun () ->
      ignore
        (Session.create ~model:(Lazy.force table) ~default_slew:0.0
           (Workloads.diamond tech)));
  Alcotest.check_raises "negative epsilon"
    (Invalid_argument "Session.create: epsilon must be finite and >= 0") (fun () ->
      ignore (session ~epsilon:(-1e-12) (Workloads.diamond tech)));
  Alcotest.check_raises "propagate validates default_slew"
    (Invalid_argument "Arrival.propagate: default_slew <= 0") (fun () ->
      ignore
        (Arrival.propagate ~model:(Lazy.force table) ~default_slew:0.0
           (Workloads.diamond tech)))

(* ---------- the --incr script front end ---------- *)

let test_script_roundtrip () =
  let text =
    "graph diamond\n\
     resize 2 0 2.0\n\
     retime 0 5 30\n\
     report\n\
     query 0 3\n"
  in
  let out = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer out in
  let run mode = Script.run ~tech ~model:(Lazy.force table) ~mode ~out:fmt text in
  let incr_run = run Script.Incremental and scratch_run = run Script.Scratch in
  check_identical "script: incremental = scratch"
    (Session.analysis incr_run.Script.session)
    (Session.analysis scratch_run.Script.session);
  (match (incr_run.Script.json, scratch_run.Script.json) with
  | Tqwm_obs.Json.Obj a, Tqwm_obs.Json.Obj b ->
    Alcotest.(check bool) "json analysis members equal" true
      (List.assoc "analysis" a = List.assoc "analysis" b)
  | _ -> Alcotest.fail "script json must be an object");
  (match Script.run ~tech ~model:(Lazy.force table) ~out:fmt "graph diamond\nfrobnicate\n" with
  | exception Script.Script_error { line; _ } ->
    Alcotest.(check int) "error line" 2 line
  | _ -> Alcotest.fail "expected Script_error")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tqwm_incr"
    [
      ( "equivalence",
        [
          quick "chain, with/without cache" test_equiv_chain;
          quick "random stacks, with/without cache" test_equiv_random_stacks;
          quick "decoder tree" test_equiv_decoder;
          quick "4 domains" test_equiv_parallel;
          quick "topology edits" test_equiv_topology;
          quick "rejected edits" test_invalid_edits_leave_session_consistent;
          quick "retiming" test_equiv_retime;
        ] );
      ( "cutoff",
        [
          quick "neutral edit" test_cutoff_on_neutral_edit;
          quick "cone bound" test_cone_bounds_reeval;
          quick "epsilon > 0" test_epsilon_suppresses_propagation;
        ] );
      ( "query", [ quick "paths" test_query_paths ] );
      ( "validation", [ quick "create" test_create_validation ] );
      ( "script", [ quick "roundtrip" test_script_roundtrip ] );
    ]
