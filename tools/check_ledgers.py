#!/usr/bin/env python3
"""Validate the repo's JSON ledgers and CI telemetry artifacts.

Every machine-readable document this repo commits or produces in CI is
either a *ledger* (a JSON array of date+commit-stamped run records, each
carrying a ``schema`` version string — see Tqwm_obs.Ledger), a single
schema-versioned object (reports, budgets), a Chrome trace
(``traceEvents``) or a metrics snapshot (``counters``). This checker
dispatches on those shapes and validates required fields per schema
version; an unknown schema version is an error, never a skip — a
consumer that cannot identify a record must not pretend it checked it.

Usage: check_ledgers.py FILE [FILE...]
Exit status 0 when every file validates, 1 otherwise (missing files are
reported but tolerated with --allow-missing, for CI legs whose optional
artifacts did not run).
"""

import json
import sys


class Invalid(Exception):
    pass


def fail(msg):
    raise Invalid(msg)


def expect(obj, field, types, ctx):
    if not isinstance(obj, dict):
        fail(f"{ctx}: expected an object, got {type(obj).__name__}")
    if field not in obj:
        fail(f"{ctx}: missing required field {field!r}")
    value = obj[field]
    if not isinstance(value, types):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        fail(f"{ctx}: field {field!r} is {type(value).__name__}, wanted {names}")
    return value


NUM = (int, float)


def check_cache(obj, ctx):
    for field in ("hits", "misses"):
        expect(obj, field, int, ctx)
    expect(obj, "hit_rate", NUM, ctx)


def check_bench_parallel(record, ctx, version):
    expect(record, "smoke", bool, ctx)
    expect(record, "domains", int, ctx)
    if version >= 2 or "available_cores" in record:
        expect(record, "available_cores", int, ctx)
    # the oversubscription flag arrived mid-version-1; /2 requires it
    if version >= 2 or "degraded" in record:
        expect(record, "degraded", bool, ctx)
    if version >= 2:
        scheduler = expect(record, "scheduler", str, ctx)
        if scheduler not in ("steal", "ready"):
            fail(f"{ctx}: unknown scheduler {scheduler!r}")
        chunk_size = expect(record, "chunk_size", int, ctx)
        if chunk_size < 0:
            fail(f"{ctx}: chunk_size {chunk_size} < 0 (0 means auto)")
    workloads = expect(record, "workloads", list, ctx)
    if not workloads:
        fail(f"{ctx}: empty workloads list")
    for i, row in enumerate(workloads):
        rctx = f"{ctx}: workloads[{i}]"
        expect(row, "name", str, rctx)
        expect(row, "stages", int, rctx)
        for field in ("seq_ms", "par_ms", "speedup", "warm_ms"):
            expect(row, field, NUM, rctx)
        expect(row, "identical", bool, rctx)
        check_cache(expect(row, "cache", dict, rctx), rctx + ".cache")
        if version >= 2:
            for field in ("ready_ms", "speedup_ready"):
                expect(row, field, NUM, rctx)
            for field in ("steals", "chunks"):
                if expect(row, field, int, rctx) < 0:
                    fail(f"{rctx}: negative {field}")
            # the oversubscription flag is stamped per scenario row so a
            # record cut out of the ledger stays honest on its own
            expect(row, "degraded", bool, rctx)


def check_bench_incr(record, ctx):
    expect(record, "smoke", bool, ctx)
    workload = expect(record, "workload", dict, ctx)
    expect(workload, "name", str, ctx + ".workload")
    expect(workload, "stages", int, ctx + ".workload")
    expect(record, "edits", int, ctx)
    for field in ("full_ms_per_edit", "incr_ms_per_edit", "speedup", "reeval_fraction"):
        expect(record, field, NUM, ctx)
    expect(record, "identical", bool, ctx)
    cutoff = expect(record, "cutoff", dict, ctx)
    expect(cutoff, "neutral_edit_reeval", int, ctx + ".cutoff")
    expect(cutoff, "cutoff_hits", int, ctx + ".cutoff")


def check_bench_alloc(record, ctx, version=1):
    expect(record, "smoke", bool, ctx)
    expect(record, "solves_per_mode", int, ctx)
    if version >= 2:
        # /2 stamps the numeric-core backing store and an arena section
        # measuring one SoA-arena propagation of a decoder tree
        storage = expect(record, "storage", str, ctx)
        if storage != "bigarray-float64":
            fail(f"{ctx}: unknown storage {storage!r}")
        arena = expect(record, "arena", dict, ctx)
        actx = ctx + ".arena"
        expect(arena, "workload", str, actx)
        for field in ("stages", "levels", "packed_floats"):
            if expect(arena, field, int, actx) <= 0:
                fail(f"{actx}: {field} is not positive")
        if not expect(arena, "minor_words_per_stage", NUM, actx) >= 0:
            fail(f"{actx}: minor_words_per_stage is negative")
    scenarios = expect(record, "scenarios", list, ctx)
    if not scenarios:
        fail(f"{ctx}: empty scenarios list")
    for i, row in enumerate(scenarios):
        rctx = f"{ctx}: scenarios[{i}]"
        expect(row, "name", str, rctx)
        for mode in ("cold", "warm"):
            m = expect(row, mode, dict, rctx)
            expect(m, "solver_words_per_region", NUM, f"{rctx}.{mode}")
            expect(m, "ms_per_solve", NUM, f"{rctx}.{mode}")


def check_audit(record, ctx):
    workloads = expect(record, "workloads", list, ctx)
    if not workloads:
        fail(f"{ctx}: empty workloads list")
    for i, row in enumerate(workloads):
        expect(row, "name", str, f"{ctx}: workloads[{i}]")
        expect(row, "avg_accuracy_pct", NUM, f"{ctx}: workloads[{i}]")
    overall = expect(record, "overall", dict, ctx)
    for field in ("stages", "avg_accuracy_pct", "runtime_ratio"):
        expect(overall, field, NUM, ctx + ".overall")
    # drift appears on gated CI reports, not on baseline ledger records
    if "drift" in record:
        drift = expect(record, "drift", dict, ctx)
        for field in ("regressed", "improved"):
            expect(drift, field, list, ctx + ".drift")


def check_alloc_budget(record, ctx):
    budget = expect(record, "solver_words_per_region", dict, ctx)
    if not budget:
        fail(f"{ctx}: empty budget")
    for name, words in budget.items():
        if not isinstance(words, NUM):
            fail(f"{ctx}: budget for {name!r} is not a number")


def check_sta_report(record, ctx):
    stages = expect(record, "stages", list, ctx)
    if not stages:
        fail(f"{ctx}: empty stages list")
    for i, row in enumerate(stages):
        rctx = f"{ctx}: stages[{i}]"
        expect(row, "id", int, rctx)
        for field in ("arrival_in_ps", "delay_ps", "slew_ps", "arrival_out_ps"):
            expect(row, field, NUM, rctx)
    expect(record, "critical_path", list, ctx)
    expect(record, "worst_arrival_ps", NUM, ctx)


def check_incr_report(record, ctx):
    mode = expect(record, "mode", str, ctx)
    if mode not in ("incremental", "scratch"):
        fail(f"{ctx}: unknown mode {mode!r}")
    analysis = expect(record, "analysis", dict, ctx)
    check_sta_report(analysis, ctx + ".analysis")
    # scripts that set a clock also report the slack aggregates
    if "timing" in record:
        timing = expect(record, "timing", dict, ctx)
        for field in ("clock_period_ps", "wns_ps", "tns_ps", "worst_slack_ps"):
            expect(timing, field, NUM, ctx + ".timing")
    stats = expect(record, "stats", dict, ctx)
    for field in ("edits", "recomputes", "stages_reeval", "cutoff_hits"):
        expect(stats, field, int, ctx + ".stats")


def check_timing_report(record, ctx):
    """tqwm-report/1: the k-worst-path / slack document of
    ``qwm_sim --report-timing --json`` — a pure function of the analysis,
    so CI additionally diffs the bytes across schedulers and domain
    counts; here we validate the shape."""
    for field in ("clock_period_ps", "wns_ps", "tns_ps", "worst_slack_ps",
                  "worst_arrival_ps"):
        expect(record, field, NUM, ctx)
    clock = record["clock_period_ps"]
    if not clock > 0:
        fail(f"{ctx}: clock_period_ps {clock} is not positive")
    endpoints = expect(record, "endpoints", list, ctx)
    if not endpoints:
        fail(f"{ctx}: empty endpoints list")
    for i, row in enumerate(endpoints):
        rctx = f"{ctx}: endpoints[{i}]"
        expect(row, "id", int, rctx)
        expect(row, "name", str, rctx)
        for field in ("arrival_ps", "required_ps", "slack_ps"):
            expect(row, field, NUM, rctx)
    # WNS must be the worst endpoint slack the document itself carries
    wns = record["wns_ps"]
    worst = min(e["slack_ps"] for e in endpoints)
    if abs(wns - worst) > 1e-6:
        fail(f"{ctx}: wns_ps {wns} disagrees with endpoint slacks (min {worst})")
    stages = expect(record, "stages", list, ctx)
    if not stages:
        fail(f"{ctx}: empty stages list")
    for i, row in enumerate(stages):
        rctx = f"{ctx}: stages[{i}]"
        expect(row, "id", int, rctx)
        for field in ("arrival_in_ps", "delay_ps", "slew_ps", "arrival_out_ps",
                      "required_ps", "slack_ps"):
            expect(row, field, NUM, rctx)
    paths = expect(record, "paths", list, ctx)
    prev_slack = None
    for i, path in enumerate(paths):
        pctx = f"{ctx}: paths[{i}]"
        if expect(path, "rank", int, pctx) != i + 1:
            fail(f"{pctx}: rank is not {i + 1}")
        slack = expect(path, "slack_ps", NUM, pctx)
        if prev_slack is not None and slack < prev_slack - 1e-9:
            fail(f"{pctx}: slack {slack} out of order (worst first)")
        prev_slack = slack
        expect(path, "arrival_ps", NUM, pctx)
        through = expect(path, "stages", list, pctx)
        if not through:
            fail(f"{pctx}: empty stage attribution")
        for j, row in enumerate(through):
            sctx = f"{pctx}: stages[{j}]"
            expect(row, "id", int, sctx)
            expect(row, "name", str, sctx)
            for field in ("arrival_in_ps", "delay_ps", "arrival_out_ps"):
                expect(row, field, NUM, sctx)
            for field in ("regions", "newton_iterations", "cache_uses"):
                if expect(row, field, int, sctx) < 0:
                    fail(f"{sctx}: negative {field}")


# the daemon's verb vocabulary (lib/server/server.ml); a bench record
# naming any other verb is malformed, not merely novel
SERVER_VERBS = frozenset(
    ("load", "edit", "script", "report", "query", "timing", "slack",
     "explain", "document", "metrics", "health", "stats", "trace", "close"))

VERB_LATENCY_FIELDS = frozenset(("count", "p50_ms", "p99_ms"))


def check_bench_server(record, ctx):
    expect(record, "smoke", bool, ctx)
    for field in ("workers", "clients", "sessions", "rounds", "requests"):
        if expect(record, field, int, ctx) < 0:
            fail(f"{ctx}: negative {field}")
    if record["sessions"] < record["clients"]:
        fail(f"{ctx}: sessions {record['sessions']} < clients {record['clients']}")
    for field in ("duration_s", "qps"):
        if not expect(record, field, NUM, ctx) >= 0:
            fail(f"{ctx}: {field} is not a non-negative number")
    expect(record, "available_cores", int, ctx)
    expect(record, "degraded", bool, ctx)
    graph = expect(record, "graph", dict, ctx)
    expect(graph, "name", str, ctx + ".graph")
    for field in ("fanout", "depth", "stages"):
        expect(graph, field, int, ctx + ".graph")
    verbs = expect(record, "verbs", dict, ctx)
    if not verbs:
        fail(f"{ctx}: empty verbs table")
    for verb, lat in verbs.items():
        vctx = f"{ctx}: verbs[{verb!r}]"
        if verb not in SERVER_VERBS:
            known = ", ".join(sorted(SERVER_VERBS))
            fail(f"{vctx}: unknown verb (known: {known})")
        if expect(lat, "count", int, vctx) <= 0:
            fail(f"{vctx}: count is not positive")
        for field in ("p50_ms", "p99_ms"):
            if not expect(lat, field, NUM, vctx) >= 0:
                fail(f"{vctx}: {field} is not a non-negative number")
        # latency entries are a closed shape: an unrecognized field means
        # the bench and the checker disagree about the schema
        unknown = set(lat) - VERB_LATENCY_FIELDS
        if unknown:
            fail(f"{vctx}: unknown latency fields {sorted(unknown)}")
    if expect(record, "identical", bool, ctx) is not True:
        fail(f"{ctx}: server replay and offline documents differ")


def check_bench_report(record, ctx):
    expect(record, "smoke", bool, ctx)
    workload = expect(record, "workload", dict, ctx)
    expect(workload, "name", str, ctx + ".workload")
    expect(workload, "stages", int, ctx + ".workload")
    expect(record, "k", int, ctx)
    expect(record, "domains", int, ctx)
    for field in ("seq_ms", "par_ms", "clock_period_ps", "wns_ps", "tns_ps"):
        expect(record, field, NUM, ctx)
    if expect(record, "identical", bool, ctx) is not True:
        fail(f"{ctx}: sequential and parallel reports differ")
    paths = expect(record, "paths", list, ctx)
    if not paths:
        fail(f"{ctx}: empty paths list")
    for i, path in enumerate(paths):
        pctx = f"{ctx}: paths[{i}]"
        expect(path, "stages", int, pctx)
        for field in ("arrival_ps", "slack_ps"):
            expect(path, field, NUM, pctx)


def check_bench_obs(record, ctx):
    """tqwm-bench-obs/1: telemetry-overhead comparison from
    ``bench --table obs`` — the same serving workload with tracing and
    the access log off, then on."""
    expect(record, "smoke", bool, ctx)
    for field in ("workers", "clients", "rounds"):
        if expect(record, field, int, ctx) < 1:
            fail(f"{ctx}: {field} is not positive")
    passes = {}
    for mode in ("off", "on"):
        m = expect(record, mode, dict, ctx)
        mctx = f"{ctx}.{mode}"
        if expect(m, "requests", int, mctx) <= 0:
            fail(f"{mctx}: requests is not positive")
        for field in ("duration_s", "qps"):
            if not expect(m, field, NUM, mctx) > 0:
                fail(f"{mctx}: {field} is not positive")
        passes[mode] = m
    on = passes["on"]
    if expect(on, "trace_events", int, ctx + ".on") <= 0:
        fail(f"{ctx}.on: no trace events captured")
    if expect(on, "log_lines", int, ctx + ".on") < on["requests"]:
        fail(f"{ctx}.on: {on['log_lines']} access-log lines for "
             f"{on['requests']} requests")
    expect(record, "overhead_pct", NUM, ctx)


# the daemon access log's closed record shape (lib/server/server.ml);
# a line with unknown or missing fields means the server and this
# checker disagree about the schema, which must fail loudly
ACCESS_LOG_FIELDS = frozenset(
    ("ts", "request", "session", "verb", "outcome", "bytes_in",
     "bytes_out", "latency_us"))

# Protocol.error codes plus "ok" (lib/server/protocol.ml)
ACCESS_LOG_OUTCOMES = frozenset(
    ("ok", "parse_error", "unknown_verb", "bad_request", "script_error",
     "oversized_line", "server_full", "internal"))


def check_access_record(record, ctx):
    if not isinstance(record, dict):
        fail(f"{ctx}: not an object")
    unknown = set(record) - ACCESS_LOG_FIELDS
    if unknown:
        fail(f"{ctx}: unknown fields {sorted(unknown)}")
    missing = ACCESS_LOG_FIELDS - set(record)
    if missing:
        fail(f"{ctx}: missing fields {sorted(missing)}")
    for field in ("ts", "latency_us"):
        if not expect(record, field, NUM, ctx) >= 0:
            fail(f"{ctx}: {field} is negative")
    for field in ("bytes_in", "bytes_out"):
        if expect(record, field, int, ctx) < 0:
            fail(f"{ctx}: {field} is negative")
    for field in ("request", "session", "outcome"):
        if not expect(record, field, str, ctx):
            fail(f"{ctx}: empty {field}")
    if record["outcome"] not in ACCESS_LOG_OUTCOMES:
        known = ", ".join(sorted(ACCESS_LOG_OUTCOMES))
        fail(f"{ctx}: unknown outcome {record['outcome']!r} (known: {known})")
    # unparsed frames (parse errors, oversized lines) log verb "-"
    if not expect(record, "verb", str, ctx):
        fail(f"{ctx}: empty verb")


def check_access_log(path):
    """One JSON object per line, every line whole and schema-complete —
    a torn concurrent write surfaces here as a parse failure."""
    records = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            ctx = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{ctx}: not valid JSON ({e})")
            check_access_record(record, ctx)
            records += 1
    if not records:
        fail(f"{path}: empty access log")
    return f"access log, {records} records"


SCHEMAS = {
    "tqwm-bench-parallel/1": lambda r, c: check_bench_parallel(r, c, 1),
    "tqwm-bench-parallel/2": lambda r, c: check_bench_parallel(r, c, 2),
    "tqwm-bench-incr/1": check_bench_incr,
    "tqwm-bench-alloc/1": check_bench_alloc,
    "tqwm-bench-alloc/2": lambda r, c: check_bench_alloc(r, c, 2),
    "tqwm-audit/1": check_audit,
    "tqwm-alloc-budget/1": check_alloc_budget,
    "tqwm-sta-report/1": check_sta_report,
    "tqwm-incr-report/1": check_incr_report,
    "tqwm-report/1": check_timing_report,
    "tqwm-bench-report/1": check_bench_report,
    "tqwm-bench-server/1": check_bench_server,
    "tqwm-bench-obs/1": check_bench_obs,
}


def check_versioned(record, ctx):
    schema = expect(record, "schema", str, ctx)
    checker = SCHEMAS.get(schema)
    if checker is None:
        known = ", ".join(sorted(SCHEMAS))
        fail(f"{ctx}: unknown schema version {schema!r} (known: {known})")
    checker(record, f"{ctx} [{schema}]")
    return schema


def check_ledger(records, ctx):
    if not records:
        fail(f"{ctx}: empty ledger")
    schemas = []
    for i, record in enumerate(records):
        rctx = f"{ctx}: record {i}"
        if not isinstance(record, dict):
            fail(f"{rctx}: not an object")
        # Tqwm_obs.Ledger stamps every appended record; the earliest
        # records of committed ledgers predate stamping, so the stamps
        # are type-checked when present rather than required
        for stamp in ("date", "commit"):
            if stamp in record and not isinstance(record[stamp], str):
                fail(f"{rctx}: stamp {stamp!r} is not a string")
        schemas.append(check_versioned(record, rctx))
    return f"ledger, {len(records)} records ({', '.join(sorted(set(schemas)))})"


def check_trace(doc, ctx):
    events = expect(doc, "traceEvents", list, ctx)
    for i, event in enumerate(events):
        ectx = f"{ctx}: traceEvents[{i}]"
        expect(event, "name", str, ectx)
        expect(event, "ph", str, ectx)
    return f"chrome trace, {len(events)} events"


def check_metrics(doc, ctx):
    counters = expect(doc, "counters", dict, ctx)
    for name, value in counters.items():
        if not isinstance(value, int):
            fail(f"{ctx}: counter {name!r} is not an integer")
    # gauges arrived with the timing-observability surface; older
    # snapshots lack the section, so it is validated when present
    gauges = doc.get("gauges", {})
    if not isinstance(gauges, dict):
        fail(f"{ctx}: gauges is not an object")
    for name, value in gauges.items():
        if not isinstance(value, NUM) and value is not None:
            fail(f"{ctx}: gauge {name!r} is not a number")
    extra = f", {len(gauges)} gauges" if gauges else ""
    return f"metrics snapshot, {len(counters)} counters{extra}"


def check_file(path):
    # the access log is JSON *lines*, not a single JSON document
    if path.endswith(".jsonl"):
        return check_access_log(path)
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return check_ledger(doc, path)
    if isinstance(doc, dict):
        if "traceEvents" in doc:
            return check_trace(doc, path)
        if "counters" in doc:
            return check_metrics(doc, path)
        if "schema" in doc:
            schema = check_versioned(doc, path)
            return f"single record [{schema}]"
        fail(f"{path}: object with neither schema, traceEvents nor counters")
    fail(f"{path}: top level is {type(doc).__name__}, wanted object or array")


def _server_sample():
    return {
        "schema": "tqwm-bench-server/1",
        "date": "2026-08-08",
        "commit": "0000000",
        "smoke": True,
        "workers": 2,
        "clients": 4,
        "sessions": 5,
        "rounds": 5,
        "requests": 90,
        "duration_s": 0.07,
        "qps": 1285.7,
        "available_cores": 1,
        "degraded": True,
        "graph": {"name": "decoder-tree", "fanout": 3, "depth": 2, "stages": 13},
        "verbs": {
            "load": {"count": 4, "p50_ms": 1.2, "p99_ms": 3.4},
            "edit": {"count": 20, "p50_ms": 0.4, "p99_ms": 1.1},
            "timing": {"count": 4, "p50_ms": 2.0, "p99_ms": 2.8},
        },
        "identical": True,
    }


def _obs_sample():
    return {
        "schema": "tqwm-bench-obs/1",
        "date": "2026-08-08",
        "commit": "0000000",
        "smoke": True,
        "workers": 2,
        "clients": 2,
        "rounds": 5,
        "off": {"requests": 32, "duration_s": 0.05, "qps": 640.0},
        "on": {"requests": 32, "duration_s": 0.06, "qps": 533.3,
               "trace_events": 250, "log_lines": 34},
        "overhead_pct": 16.7,
    }


def _alloc2_sample():
    return {
        "schema": "tqwm-bench-alloc/2",
        "date": "2026-08-08",
        "commit": "0000000",
        "smoke": True,
        "solves_per_mode": 200,
        "storage": "bigarray-float64",
        "scenarios": [
            {
                "name": "stack6",
                "cold": {"solver_words_per_region": 2742.1, "ms_per_solve": 0.26},
                "warm": {"solver_words_per_region": 2742.1, "ms_per_solve": 0.28},
            }
        ],
        "arena": {
            "workload": "decoder-tree",
            "stages": 13,
            "levels": 3,
            "packed_floats": 990,
            "minor_words_per_stage": 94663.0,
        },
    }


def _access_sample():
    return {
        "ts": 1754600000.25,
        "request": "s1.r1",
        "session": "s1",
        "verb": "load",
        "outcome": "ok",
        "bytes_in": 34,
        "bytes_out": 86,
        "latency_us": 42.5,
    }


def self_test():
    """Unit-check the validators against known-good and known-bad records
    (run by CI so schema drift in this file itself fails loudly)."""
    cases = []

    def bad(label, mutate, sample=_server_sample):
        record = sample()
        mutate(record)
        cases.append((label, record, False, check_versioned))

    cases.append(("good server record", _server_sample(), True,
                  check_versioned))
    bad("unknown verb", lambda r: r["verbs"].update(
        {"frobnicate": {"count": 1, "p50_ms": 0.1, "p99_ms": 0.1}}))
    bad("unknown latency field", lambda r: r["verbs"]["load"].update(
        {"p95_ms": 2.0}))
    bad("missing percentile", lambda r: r["verbs"]["edit"].pop("p99_ms"))
    bad("non-identical replay", lambda r: r.update({"identical": False}))
    bad("negative qps", lambda r: r.update({"qps": -1.0}))
    bad("sessions below clients", lambda r: r.update({"sessions": 2}))
    bad("unknown schema", lambda r: r.update({"schema": "tqwm-bench-server/9"}))
    # observability verbs are part of the closed vocabulary
    cases.append(("stats verb accepted", dict(
        _server_sample(), verbs={
            "stats": {"count": 2, "p50_ms": 0.1, "p99_ms": 0.2}}), True,
        check_versioned))

    cases.append(("good alloc/2 record", _alloc2_sample(), True,
                  check_versioned))
    bad("alloc/2 missing storage", lambda r: r.pop("storage"), _alloc2_sample)
    bad("alloc/2 unknown storage",
        lambda r: r.update({"storage": "boxed-float-array"}), _alloc2_sample)
    bad("alloc/2 missing arena", lambda r: r.pop("arena"), _alloc2_sample)
    bad("alloc/2 zero packed floats",
        lambda r: r["arena"].update({"packed_floats": 0}), _alloc2_sample)
    # alloc/1 records never carried storage/arena — they must keep
    # validating without them
    alloc1 = _alloc2_sample()
    alloc1["schema"] = "tqwm-bench-alloc/1"
    del alloc1["storage"], alloc1["arena"]
    cases.append(("good alloc/1 record (no storage/arena)", alloc1, True,
                  check_versioned))

    # ledger stamps are type-checked when present, not required: the
    # earliest committed records predate Tqwm_obs.Ledger stamping, so a
    # date-less seed record must validate...
    dateless = _alloc2_sample()
    del dateless["date"], dateless["commit"]
    cases.append(("ledger with date-less seed record",
                  [dateless, _alloc2_sample()], True, check_ledger))
    # ...while a present-but-mistyped stamp must not
    mistyped = _alloc2_sample()
    mistyped["date"] = 20260808
    cases.append(("ledger with non-string date stamp", [mistyped], False,
                  check_ledger))

    cases.append(("good obs record", _obs_sample(), True, check_versioned))
    bad("obs zero trace events",
        lambda r: r["on"].update({"trace_events": 0}), _obs_sample)
    bad("obs lost log lines",
        lambda r: r["on"].update({"log_lines": 3}), _obs_sample)
    bad("obs zero duration",
        lambda r: r["off"].update({"duration_s": 0}), _obs_sample)
    bad("obs missing on pass", lambda r: r.pop("on"), _obs_sample)

    def bad_access(label, mutate):
        record = _access_sample()
        mutate(record)
        cases.append((label, record, False, check_access_record))

    cases.append(("good access record", _access_sample(), True,
                  check_access_record))
    cases.append(("access unparsed frame", dict(
        _access_sample(), verb="-", outcome="parse_error", bytes_in=12), True,
        check_access_record))
    bad_access("access unknown field", lambda r: r.update({"user": "root"}))
    bad_access("access missing latency", lambda r: r.pop("latency_us"))
    bad_access("access unknown outcome", lambda r: r.update(
        {"outcome": "mostly_ok"}))
    bad_access("access empty verb", lambda r: r.update({"verb": ""}))
    bad_access("access negative bytes", lambda r: r.update({"bytes_out": -1}))
    bad_access("access string ts", lambda r: r.update({"ts": "yesterday"}))

    failures = 0
    for label, record, expect_ok, checker in cases:
        try:
            checker(record, f"self-test: {label}")
            outcome = True
            detail = "validated"
        except Invalid as e:
            outcome = False
            detail = str(e)
        if outcome == expect_ok:
            print(f"self-test: {label}: OK ({detail})")
        else:
            verdict = "accepted" if outcome else "rejected"
            print(f"self-test: {label}: FAIL (wrongly {verdict}: {detail})",
                  file=sys.stderr)
            failures += 1
    return 1 if failures else 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    allow_missing = "--allow-missing" in argv
    paths = [a for a in argv[1:] if a != "--allow-missing"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            print(f"{path}: OK ({check_file(path)})")
        except FileNotFoundError:
            if allow_missing:
                print(f"{path}: missing (tolerated)")
            else:
                print(f"{path}: MISSING", file=sys.stderr)
                failures += 1
        except (Invalid, json.JSONDecodeError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
